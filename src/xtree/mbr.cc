#include "xtree/mbr.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>

namespace msq {

Mbr Mbr::Empty(size_t dim) {
  Mbr m;
  m.lo_.assign(dim, std::numeric_limits<Scalar>::max());
  m.hi_.assign(dim, std::numeric_limits<Scalar>::lowest());
  return m;
}

Mbr Mbr::ForPoint(const Vec& p) {
  Mbr m;
  m.lo_ = p;
  m.hi_ = p;
  return m;
}

Mbr Mbr::FromBounds(Vec lo, Vec hi) {
  assert(lo.size() == hi.size());
  Mbr m;
  m.lo_ = std::move(lo);
  m.hi_ = std::move(hi);
  return m;
}

bool Mbr::IsEmpty() const {
  return lo_.empty() || lo_[0] > hi_[0];
}

void Mbr::ExtendPoint(const Vec& p) {
  assert(p.size() == lo_.size());
  for (size_t d = 0; d < p.size(); ++d) {
    lo_[d] = std::min(lo_[d], p[d]);
    hi_[d] = std::max(hi_[d], p[d]);
  }
}

void Mbr::ExtendMbr(const Mbr& other) {
  assert(other.dim() == dim());
  for (size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

bool Mbr::ContainsPoint(const Vec& p) const {
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
  }
  return true;
}

bool Mbr::ContainsMbr(const Mbr& other) const {
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  }
  return true;
}

bool Mbr::Intersects(const Mbr& other) const {
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (other.hi_[d] < lo_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

double Mbr::Area() const {
  double area = 1.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    area *= static_cast<double>(hi_[d]) - lo_[d];
  }
  return area;
}

double Mbr::Margin() const {
  double margin = 0.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    margin += static_cast<double>(hi_[d]) - lo_[d];
  }
  return margin;
}

double Mbr::OverlapArea(const Mbr& other) const {
  double area = 1.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    const double lo = std::max(lo_[d], other.lo_[d]);
    const double hi = std::min(hi_[d], other.hi_[d]);
    if (hi <= lo) return 0.0;
    area *= hi - lo;
  }
  return area;
}

double Mbr::Enlargement(const Mbr& other) const {
  double enlarged = 1.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    const double lo = std::min(lo_[d], other.lo_[d]);
    const double hi = std::max(hi_[d], other.hi_[d]);
    enlarged *= hi - lo;
  }
  return enlarged - Area();
}

Vec Mbr::Center() const {
  Vec c(lo_.size());
  for (size_t d = 0; d < lo_.size(); ++d) {
    c[d] = static_cast<Scalar>((static_cast<double>(lo_[d]) + hi_[d]) / 2.0);
  }
  return c;
}

std::string Mbr::ToString() const {
  std::ostringstream os;
  os << "[" << VecToString(lo_) << " .. " << VecToString(hi_) << "]";
  return os.str();
}

}  // namespace msq
