// Minimum bounding rectangles for the X-tree directory.

#ifndef MSQ_XTREE_MBR_H_
#define MSQ_XTREE_MBR_H_

#include <string>

#include "dist/box_metric.h"
#include "dist/vector.h"

namespace msq {

/// Axis-aligned hyper-rectangle [lo, hi] (component-wise, inclusive).
class Mbr {
 public:
  Mbr() = default;

  /// The empty rectangle of the given dimensionality: extending it with
  /// anything yields that thing's bounds.
  static Mbr Empty(size_t dim);

  /// Degenerate rectangle covering one point.
  static Mbr ForPoint(const Vec& p);

  /// Rectangle with explicit bounds (used by index deserialization).
  static Mbr FromBounds(Vec lo, Vec hi);

  bool IsEmpty() const;
  size_t dim() const { return lo_.size(); }
  const Vec& lo() const { return lo_; }
  const Vec& hi() const { return hi_; }

  void ExtendPoint(const Vec& p);
  void ExtendMbr(const Mbr& other);

  bool ContainsPoint(const Vec& p) const;
  bool ContainsMbr(const Mbr& other) const;
  bool Intersects(const Mbr& other) const;

  /// Product of extents. Underflows toward 0 in very high dimensions;
  /// callers breaking ties (R* split) fall back to Margin() then.
  double Area() const;

  /// Sum of extents (the L1 "margin" of the R*-tree split heuristic).
  double Margin() const;

  /// Area of the intersection (0 when disjoint).
  double OverlapArea(const Mbr& other) const;

  /// Area increase when extended to cover `other`.
  double Enlargement(const Mbr& other) const;

  /// Center point.
  Vec Center() const;

  /// Lower bound on the metric distance from q to any point inside,
  /// delegated to the metric's box-distance capability.
  double MinDist(const Vec& q, const BoxDistanceMetric& metric) const {
    return metric.MinDistToBox(q, lo_, hi_);
  }

  std::string ToString() const;

 private:
  Vec lo_, hi_;
};

}  // namespace msq

#endif  // MSQ_XTREE_MBR_H_
