#include "xtree/node.h"

// Data-only definitions; this translation unit anchors the header.
