// X-tree node representation.
//
// Nodes live in an in-memory arena (std::vector) addressed by index; leaf
// nodes are mapped 1:1 to data pages of the simulated storage when the
// tree is finalized for querying. Supernodes (Berchtold/Keim/Kriegel,
// VLDB'96) are directory nodes spanning `multiplicity` consecutive blocks —
// created when neither the topological nor the overlap-minimal split can
// partition a directory node without high overlap.

#ifndef MSQ_XTREE_NODE_H_
#define MSQ_XTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "dist/vector.h"
#include "storage/page.h"
#include "xtree/mbr.h"

namespace msq {

/// Index of a node within the tree's arena.
using XNodeIndex = uint32_t;
inline constexpr XNodeIndex kInvalidNode = 0xffffffffu;

/// Directory entry: the bounding rectangle of a child node.
struct XDirEntry {
  Mbr mbr;
  XNodeIndex child = kInvalidNode;
};

/// One X-tree node (leaf or directory; directory may be a supernode).
struct XNode {
  bool is_leaf = true;
  /// Width in disk blocks: 1 for normal nodes, >1 for supernodes.
  uint32_t multiplicity = 1;
  XNodeIndex parent = kInvalidNode;
  Mbr mbr;
  /// Directory children (empty for leaves).
  std::vector<XDirEntry> entries;
  /// Stored objects (empty for directory nodes).
  std::vector<ObjectId> objects;
  /// Bitmask of the dimensions along which this node's region has been
  /// split (the X-tree split history, dims 0..63). Drives the
  /// overlap-minimal split.
  uint64_t split_dims = 0;
  /// Data page of a finalized leaf.
  PageId page = kInvalidPageId;
};

}  // namespace msq

#endif  // MSQ_XTREE_NODE_H_
