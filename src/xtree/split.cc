#include "xtree/split.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace msq {

namespace {

// Covering MBR of items[order[from..to)].
Mbr CoverRange(const std::vector<SplitItem>& items,
               const std::vector<uint32_t>& order, size_t from, size_t to) {
  Mbr m = Mbr::Empty(items[0].mbr.dim());
  for (size_t i = from; i < to; ++i) m.ExtendMbr(items[order[i]].mbr);
  return m;
}

struct AxisSort {
  std::vector<uint32_t> by_lo;
  std::vector<uint32_t> by_hi;
};

AxisSort SortAxis(const std::vector<SplitItem>& items, size_t axis) {
  AxisSort s;
  s.by_lo.resize(items.size());
  std::iota(s.by_lo.begin(), s.by_lo.end(), 0u);
  s.by_hi = s.by_lo;
  std::sort(s.by_lo.begin(), s.by_lo.end(), [&](uint32_t a, uint32_t b) {
    if (items[a].mbr.lo()[axis] != items[b].mbr.lo()[axis]) {
      return items[a].mbr.lo()[axis] < items[b].mbr.lo()[axis];
    }
    return items[a].mbr.hi()[axis] < items[b].mbr.hi()[axis];
  });
  std::sort(s.by_hi.begin(), s.by_hi.end(), [&](uint32_t a, uint32_t b) {
    if (items[a].mbr.hi()[axis] != items[b].mbr.hi()[axis]) {
      return items[a].mbr.hi()[axis] < items[b].mbr.hi()[axis];
    }
    return items[a].mbr.lo()[axis] < items[b].mbr.lo()[axis];
  });
  return s;
}

// Sum of the two halves' margins over all legal distributions of one
// sorted order (the R* axis-goodness measure).
double MarginSum(const std::vector<SplitItem>& items,
                 const std::vector<uint32_t>& order, size_t min_fill) {
  const size_t n = order.size();
  // Prefix/suffix covers to make this O(n * dim) instead of O(n^2 * dim).
  std::vector<Mbr> prefix(n), suffix(n);
  prefix[0] = items[order[0]].mbr;
  for (size_t i = 1; i < n; ++i) {
    prefix[i] = prefix[i - 1];
    prefix[i].ExtendMbr(items[order[i]].mbr);
  }
  suffix[n - 1] = items[order[n - 1]].mbr;
  for (size_t i = n - 1; i-- > 0;) {
    suffix[i] = suffix[i + 1];
    suffix[i].ExtendMbr(items[order[i]].mbr);
  }
  double sum = 0.0;
  for (size_t k = min_fill; k + min_fill <= n; ++k) {
    sum += prefix[k - 1].Margin() + suffix[k].Margin();
  }
  return sum;
}

}  // namespace

double GroupOverlapRatio(const Mbr& left, const Mbr& right) {
  const double inter = left.OverlapArea(right);
  if (inter <= 0.0) return 0.0;
  const double uni = left.Area() + right.Area() - inter;
  if (uni <= 0.0) {
    // Degenerate (zero-volume) rectangles that still intersect: treat as
    // fully overlapping — splitting them brings no selectivity.
    return 1.0;
  }
  return inter / uni;
}

SplitOutcome TopologicalSplit(const std::vector<SplitItem>& items,
                              size_t min_fill_count) {
  assert(!items.empty());
  const size_t n = items.size();
  const size_t dim = items[0].mbr.dim();
  size_t min_fill = std::max<size_t>(1, min_fill_count);
  assert(n >= 2 * min_fill);

  // 1. Choose the axis minimizing the margin sum over both sort orders.
  size_t best_axis = 0;
  double best_margin = std::numeric_limits<double>::infinity();
  for (size_t axis = 0; axis < dim; ++axis) {
    const AxisSort s = SortAxis(items, axis);
    const double margin = MarginSum(items, s.by_lo, min_fill) +
                          MarginSum(items, s.by_hi, min_fill);
    if (margin < best_margin) {
      best_margin = margin;
      best_axis = axis;
    }
  }

  // 2. On that axis, choose the distribution minimizing overlap area
  //    (ties: total area) across both sort orders.
  const AxisSort s = SortAxis(items, best_axis);
  const std::vector<uint32_t>* best_order = nullptr;
  size_t best_k = min_fill;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto* order : {&s.by_lo, &s.by_hi}) {
    std::vector<Mbr> prefix(n), suffix(n);
    prefix[0] = items[(*order)[0]].mbr;
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = prefix[i - 1];
      prefix[i].ExtendMbr(items[(*order)[i]].mbr);
    }
    suffix[n - 1] = items[(*order)[n - 1]].mbr;
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = suffix[i + 1];
      suffix[i].ExtendMbr(items[(*order)[i]].mbr);
    }
    for (size_t k = min_fill; k + min_fill <= n; ++k) {
      const double overlap = prefix[k - 1].OverlapArea(suffix[k]);
      const double area = prefix[k - 1].Area() + suffix[k].Area();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_order = order;
        best_k = k;
      }
    }
  }
  assert(best_order != nullptr);

  SplitOutcome out;
  out.axis = best_axis;
  out.left.assign(best_order->begin(),
                  best_order->begin() + static_cast<ptrdiff_t>(best_k));
  out.right.assign(best_order->begin() + static_cast<ptrdiff_t>(best_k),
                   best_order->end());
  const Mbr left = CoverRange(items, *best_order, 0, best_k);
  const Mbr right = CoverRange(items, *best_order, best_k, n);
  out.overlap_ratio = GroupOverlapRatio(left, right);
  return out;
}

std::optional<SplitOutcome> OverlapMinimalSplit(
    const std::vector<SplitItem>& items, uint64_t history_mask,
    size_t min_fill_count) {
  if (items.empty() || history_mask == 0) return std::nullopt;
  const size_t n = items.size();
  const size_t dim = items[0].mbr.dim();
  const size_t min_fill = std::max<size_t>(1, min_fill_count);
  if (n < 2 * min_fill) return std::nullopt;

  std::optional<SplitOutcome> best;
  size_t best_balance = n;  // |k - n/2|, smaller is better
  const size_t usable_dims = std::min<size_t>(dim, 64);
  for (size_t axis = 0; axis < usable_dims; ++axis) {
    if ((history_mask & (1ull << axis)) == 0) continue;
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return items[a].mbr.lo()[axis] < items[b].mbr.lo()[axis];
    });
    // prefix_hi[i] = max hi over order[0..i].
    std::vector<Scalar> prefix_hi(n);
    prefix_hi[0] = items[order[0]].mbr.hi()[axis];
    for (size_t i = 1; i < n; ++i) {
      prefix_hi[i] =
          std::max(prefix_hi[i - 1], items[order[i]].mbr.hi()[axis]);
    }
    for (size_t k = min_fill; k + min_fill <= n; ++k) {
      // Overlap-free separation: every left item ends before every right
      // item begins along this axis.
      if (prefix_hi[k - 1] > items[order[k]].mbr.lo()[axis]) continue;
      const size_t balance =
          k > n / 2 ? k - n / 2 : n / 2 - k;
      if (balance < best_balance) {
        best_balance = balance;
        SplitOutcome out;
        out.axis = axis;
        out.left.assign(order.begin(),
                        order.begin() + static_cast<ptrdiff_t>(k));
        out.right.assign(order.begin() + static_cast<ptrdiff_t>(k),
                         order.end());
        out.overlap_ratio = 0.0;
        best = std::move(out);
      }
    }
  }
  return best;
}

}  // namespace msq
