// Node split algorithms of the X-tree:
//  * the R*-tree topological split (Beckmann et al., SIGMOD'90) — choose
//    the split axis by minimum margin sum, the distribution by minimum
//    overlap (ties: minimum area);
//  * the overlap-minimal split along a dimension from the node's split
//    history — succeeds only when a balanced, overlap-free separation
//    exists; otherwise the caller creates a supernode.

#ifndef MSQ_XTREE_SPLIT_H_
#define MSQ_XTREE_SPLIT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "xtree/mbr.h"

namespace msq {

/// An item to distribute: the bounding rectangle of an entry (a point MBR
/// for leaf objects) plus its position in the source node.
struct SplitItem {
  Mbr mbr;
  uint32_t index = 0;
};

/// Outcome of a split: item indices of the two halves, the chosen axis,
/// and the overlap ratio area(L∩R) / area(L∪R) of the two covering MBRs
/// (the X-tree's supernode criterion input).
struct SplitOutcome {
  std::vector<uint32_t> left;
  std::vector<uint32_t> right;
  size_t axis = 0;
  double overlap_ratio = 0.0;
};

/// Overlap ratio of two MBR groups (union-normalized; 0 when the covering
/// rectangles are disjoint, approaching 1 when nearly identical).
double GroupOverlapRatio(const Mbr& left, const Mbr& right);

/// R*-tree topological split. `min_fill_count` is the minimum number of
/// items per half (>= 1). Requires items.size() >= 2 * min_fill_count.
SplitOutcome TopologicalSplit(const std::vector<SplitItem>& items,
                              size_t min_fill_count);

/// X-tree overlap-minimal split: tries each dimension set in
/// `history_mask` (bit d = dimension d) for a separation with zero MBR
/// overlap along that dimension and at least `min_fill_count` items per
/// half. Returns nullopt when no such balanced separation exists.
std::optional<SplitOutcome> OverlapMinimalSplit(
    const std::vector<SplitItem>& items, uint64_t history_mask,
    size_t min_fill_count);

}  // namespace msq

#endif  // MSQ_XTREE_SPLIT_H_
