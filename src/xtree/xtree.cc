#include "xtree/xtree.h"

#include "common/serialize.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <limits>
#include <queue>

namespace msq {

namespace {

size_t DeriveDirCapacity(size_t page_size_bytes, size_t dim) {
  // Entry: two dim-sized float bounds + child pointer/bookkeeping.
  const size_t entry_bytes = 2 * dim * sizeof(Scalar) + 8;
  const size_t c = page_size_bytes / entry_bytes;
  return c < 2 ? 2 : c;
}

uint64_t AxisBit(size_t axis) {
  return axis < 64 ? (1ull << axis) : 0ull;
}

}  // namespace

XTreeBackend::XTreeBackend(std::shared_ptr<const Dataset> dataset,
                           std::shared_ptr<const Metric> metric,
                           const BoxDistanceMetric* box_metric,
                           XTreeOptions options)
    : dataset_(std::move(dataset)),
      metric_(std::move(metric)),
      box_metric_(box_metric),
      options_(options) {
  // Empty root leaf.
  XNode root;
  root.is_leaf = true;
  root.mbr = Mbr::Empty(dataset_->dim());
  nodes_.push_back(std::move(root));
  root_ = 0;
}

StatusOr<std::unique_ptr<XTreeBackend>> XTreeBackend::BulkLoad(
    std::shared_ptr<const Dataset> dataset,
    std::shared_ptr<const Metric> metric, const XTreeOptions& options) {
  if (dataset == nullptr || dataset->empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  const auto* box = dynamic_cast<const BoxDistanceMetric*>(metric.get());
  if (box == nullptr) {
    return Status::NotSupported("X-tree requires a metric with MINDIST "
                                "support (Lp family); got " + metric->Name());
  }
  XTreeOptions opts = options;
  if (opts.leaf_capacity == 0) {
    opts.leaf_capacity = ObjectsPerPage(opts.page_size_bytes, dataset->dim());
  }
  if (opts.dir_capacity == 0) {
    opts.dir_capacity = DeriveDirCapacity(opts.page_size_bytes,
                                          dataset->dim());
  }
  if (opts.leaf_capacity < 2 || opts.dir_capacity < 2) {
    return Status::InvalidArgument("page size too small for node capacity");
  }
  auto tree = std::unique_ptr<XTreeBackend>(
      new XTreeBackend(std::move(dataset), std::move(metric), box, opts));
  tree->BulkBuild();
  return tree;
}

StatusOr<std::unique_ptr<XTreeBackend>> XTreeBackend::BuildByInsertion(
    std::shared_ptr<const Dataset> dataset,
    std::shared_ptr<const Metric> metric, const XTreeOptions& options) {
  if (dataset == nullptr || dataset->empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  const auto* box = dynamic_cast<const BoxDistanceMetric*>(metric.get());
  if (box == nullptr) {
    return Status::NotSupported("X-tree requires a metric with MINDIST "
                                "support (Lp family); got " + metric->Name());
  }
  XTreeOptions opts = options;
  if (opts.leaf_capacity == 0) {
    opts.leaf_capacity = ObjectsPerPage(opts.page_size_bytes, dataset->dim());
  }
  if (opts.dir_capacity == 0) {
    opts.dir_capacity = DeriveDirCapacity(opts.page_size_bytes,
                                          dataset->dim());
  }
  if (opts.leaf_capacity < 2 || opts.dir_capacity < 2) {
    return Status::InvalidArgument("page size too small for node capacity");
  }
  const size_t n = dataset->size();
  auto tree = std::unique_ptr<XTreeBackend>(
      new XTreeBackend(std::move(dataset), std::move(metric), box, opts));
  for (ObjectId id = 0; id < n; ++id) {
    MSQ_RETURN_IF_ERROR(tree->Insert(id));
  }
  return tree;
}

size_t XTreeBackend::LeafMinFillCount() const {
  const size_t cap = options_.leaf_capacity;
  size_t m = static_cast<size_t>(std::floor(options_.min_fill *
                                            static_cast<double>(cap)));
  if (m < 1) m = 1;
  // Splitting distributes cap+1 items; both halves need min fill.
  if (2 * m > cap + 1) m = (cap + 1) / 2;
  return m;
}

size_t XTreeBackend::DirMinFillCount() const {
  const size_t cap = options_.dir_capacity;
  size_t m = static_cast<size_t>(std::floor(options_.min_fill *
                                            static_cast<double>(cap)));
  if (m < 1) m = 1;
  if (2 * m > cap + 1) m = (cap + 1) / 2;
  return m;
}

// --------------------------------------------------------------------
// Dynamic insertion
// --------------------------------------------------------------------

Status XTreeBackend::Insert(ObjectId id) {
  if (id >= dataset_->size()) {
    return Status::InvalidArgument("object id out of range");
  }
  if (layout_.has_store()) {
    // Re-finalizing would reshuffle pages out from under the on-disk
    // extents; the persistent store is read-only by design.
    return Status::NotSupported("cannot insert into a persistent store");
  }
  MarkDirty();
  const Vec& p = dataset_->object(id);
  const XNodeIndex leaf = ChooseSubtree(p);
  InsertIntoLeaf(leaf, id, /*may_reinsert=*/options_.enable_reinsert);
  ++num_objects_indexed_;
  return Status::OK();
}

XNodeIndex XTreeBackend::ChooseSubtree(const Vec& p) const {
  XNodeIndex cur = root_;
  const Mbr point_mbr = Mbr::ForPoint(p);
  while (!nodes_[cur].is_leaf) {
    const XNode& node = nodes_[cur];
    const bool children_are_leaves =
        nodes_[node.entries.front().child].is_leaf;
    // R*: minimize overlap enlargement for leaf-level children, area
    // enlargement otherwise. Overlap enlargement is O(c^2); restrict the
    // candidate set to the best few by area enlargement when c is large.
    size_t best = 0;
    if (children_are_leaves) {
      std::vector<uint32_t> candidates(node.entries.size());
      for (uint32_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
      constexpr size_t kMaxOverlapCandidates = 32;
      if (candidates.size() > kMaxOverlapCandidates) {
        std::partial_sort(
            candidates.begin(),
            candidates.begin() + kMaxOverlapCandidates, candidates.end(),
            [&](uint32_t a, uint32_t b) {
              return node.entries[a].mbr.Enlargement(point_mbr) <
                     node.entries[b].mbr.Enlargement(point_mbr);
            });
        candidates.resize(kMaxOverlapCandidates);
      }
      double best_overlap_delta = std::numeric_limits<double>::infinity();
      double best_enlargement = std::numeric_limits<double>::infinity();
      for (uint32_t ci : candidates) {
        Mbr extended = node.entries[ci].mbr;
        extended.ExtendPoint(p);
        double overlap_before = 0.0, overlap_after = 0.0;
        for (uint32_t j = 0; j < node.entries.size(); ++j) {
          if (j == ci) continue;
          overlap_before +=
              node.entries[ci].mbr.OverlapArea(node.entries[j].mbr);
          overlap_after += extended.OverlapArea(node.entries[j].mbr);
        }
        const double overlap_delta = overlap_after - overlap_before;
        const double enlargement = node.entries[ci].mbr.Enlargement(point_mbr);
        if (overlap_delta < best_overlap_delta ||
            (overlap_delta == best_overlap_delta &&
             enlargement < best_enlargement)) {
          best_overlap_delta = overlap_delta;
          best_enlargement = enlargement;
          best = ci;
        }
      }
    } else {
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (uint32_t i = 0; i < node.entries.size(); ++i) {
        const double enlargement = node.entries[i].mbr.Enlargement(point_mbr);
        const double area = node.entries[i].mbr.Area();
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && area < best_area)) {
          best_enlargement = enlargement;
          best_area = area;
          best = i;
        }
      }
    }
    cur = node.entries[best].child;
  }
  return cur;
}

void XTreeBackend::ExtendAncestors(XNodeIndex node, const Vec& p) {
  XNodeIndex cur = node;
  if (nodes_[cur].mbr.IsEmpty()) {
    nodes_[cur].mbr = Mbr::ForPoint(p);
  } else {
    nodes_[cur].mbr.ExtendPoint(p);
  }
  while (nodes_[cur].parent != kInvalidNode) {
    const XNodeIndex parent = nodes_[cur].parent;
    for (XDirEntry& entry : nodes_[parent].entries) {
      if (entry.child == cur) {
        entry.mbr = nodes_[cur].mbr;
        break;
      }
    }
    if (nodes_[parent].mbr.IsEmpty()) {
      nodes_[parent].mbr = nodes_[cur].mbr;
    } else {
      nodes_[parent].mbr.ExtendMbr(nodes_[cur].mbr);
    }
    cur = parent;
  }
}

void XTreeBackend::InsertIntoLeaf(XNodeIndex leaf, ObjectId id,
                                  bool may_reinsert) {
  nodes_[leaf].objects.push_back(id);
  ExtendAncestors(leaf, dataset_->object(id));
  if (nodes_[leaf].objects.size() > options_.leaf_capacity) {
    HandleLeafOverflow(leaf, may_reinsert);
  }
}

void XTreeBackend::HandleLeafOverflow(XNodeIndex leaf, bool may_reinsert) {
  if (may_reinsert && options_.enable_reinsert && leaf != root_) {
    ReinsertLeafEntries(leaf);
  } else {
    SplitLeaf(leaf);
  }
}

void XTreeBackend::RecomputeMbr(XNodeIndex node) {
  XNode& n = nodes_[node];
  Mbr m = Mbr::Empty(dataset_->dim());
  if (n.is_leaf) {
    for (ObjectId id : n.objects) m.ExtendPoint(dataset_->object(id));
  } else {
    for (const XDirEntry& e : n.entries) m.ExtendMbr(e.mbr);
  }
  n.mbr = m;
}

// Propagates a (possibly shrunken) MBR from `node` to the root, keeping
// parent entries exactly equal to their child MBRs.
void XTreeBackend::TightenAncestors(XNodeIndex node) {
  XNodeIndex cur = node;
  while (nodes_[cur].parent != kInvalidNode) {
    const XNodeIndex parent = nodes_[cur].parent;
    for (XDirEntry& entry : nodes_[parent].entries) {
      if (entry.child == cur) {
        entry.mbr = nodes_[cur].mbr;
        break;
      }
    }
    RecomputeMbr(parent);
    cur = parent;
  }
}

void XTreeBackend::ReinsertLeafEntries(XNodeIndex leaf) {
  XNode& node = nodes_[leaf];
  const Vec center = node.mbr.Center();
  // Farthest-from-center entries get reinserted (R* "far reinsert").
  std::vector<std::pair<double, ObjectId>> by_dist;
  by_dist.reserve(node.objects.size());
  for (ObjectId id : node.objects) {
    by_dist.emplace_back(metric_->Distance(center, dataset_->object(id)), id);
  }
  std::sort(by_dist.begin(), by_dist.end());
  size_t reinsert_count = static_cast<size_t>(
      std::floor(options_.reinsert_fraction *
                 static_cast<double>(node.objects.size())));
  if (reinsert_count < 1) reinsert_count = 1;
  if (reinsert_count >= node.objects.size()) {
    reinsert_count = node.objects.size() - 1;
  }
  std::vector<ObjectId> reinsert;
  reinsert.reserve(reinsert_count);
  for (size_t i = by_dist.size() - reinsert_count; i < by_dist.size(); ++i) {
    reinsert.push_back(by_dist[i].second);
  }
  node.objects.resize(0);
  for (size_t i = 0; i + reinsert_count < by_dist.size(); ++i) {
    node.objects.push_back(by_dist[i].second);
  }
  // Tighten MBRs up the path after the removal.
  RecomputeMbr(leaf);
  TightenAncestors(leaf);
  for (ObjectId id : reinsert) {
    const XNodeIndex target = ChooseSubtree(dataset_->object(id));
    InsertIntoLeaf(target, id, /*may_reinsert=*/false);
  }
}

void XTreeBackend::SplitLeaf(XNodeIndex leaf) {
  XNode& node = nodes_[leaf];
  std::vector<SplitItem> items;
  items.reserve(node.objects.size());
  for (uint32_t i = 0; i < node.objects.size(); ++i) {
    items.push_back({Mbr::ForPoint(dataset_->object(node.objects[i])), i});
  }
  const SplitOutcome outcome = TopologicalSplit(items, LeafMinFillCount());

  XNode right;
  right.is_leaf = true;
  right.split_dims = node.split_dims | AxisBit(outcome.axis);
  std::vector<ObjectId> left_objects;
  left_objects.reserve(outcome.left.size());
  for (uint32_t i : outcome.left) left_objects.push_back(node.objects[i]);
  right.objects.reserve(outcome.right.size());
  for (uint32_t i : outcome.right) right.objects.push_back(node.objects[i]);
  node.objects = std::move(left_objects);
  node.split_dims |= AxisBit(outcome.axis);

  const XNodeIndex right_index = static_cast<XNodeIndex>(nodes_.size());
  nodes_.push_back(std::move(right));
  RecomputeMbr(leaf);
  RecomputeMbr(right_index);
  InstallSplit(leaf, right_index, outcome.axis);
}

void XTreeBackend::InstallSplit(XNodeIndex node, XNodeIndex right,
                                size_t axis) {
  if (node == root_) {
    XNode new_root;
    new_root.is_leaf = false;
    new_root.split_dims = AxisBit(axis);
    new_root.entries.push_back({nodes_[node].mbr, node});
    new_root.entries.push_back({nodes_[right].mbr, right});
    new_root.mbr = nodes_[node].mbr;
    new_root.mbr.ExtendMbr(nodes_[right].mbr);
    const XNodeIndex root_index = static_cast<XNodeIndex>(nodes_.size());
    nodes_.push_back(std::move(new_root));
    nodes_[node].parent = root_index;
    nodes_[right].parent = root_index;
    root_ = root_index;
    return;
  }
  const XNodeIndex parent = nodes_[node].parent;
  nodes_[right].parent = parent;
  XNode& pnode = nodes_[parent];
  for (XDirEntry& entry : pnode.entries) {
    if (entry.child == node) {
      entry.mbr = nodes_[node].mbr;
      break;
    }
  }
  pnode.entries.push_back({nodes_[right].mbr, right});
  pnode.split_dims |= AxisBit(axis);
  RecomputeMbr(parent);
  TightenAncestors(parent);
  if (nodes_[parent].entries.size() >
      options_.dir_capacity * nodes_[parent].multiplicity) {
    HandleDirOverflow(parent);
  }
}

void XTreeBackend::HandleDirOverflow(XNodeIndex node_index) {
  XNode& node = nodes_[node_index];
  std::vector<SplitItem> items;
  items.reserve(node.entries.size());
  for (uint32_t i = 0; i < node.entries.size(); ++i) {
    items.push_back({node.entries[i].mbr, i});
  }

  SplitOutcome outcome = TopologicalSplit(items, DirMinFillCount());
  bool have_split = outcome.overlap_ratio <= options_.max_overlap;
  if (!have_split) {
    // Topological split too overlapping: try the overlap-minimal split
    // along a dimension of the split history.
    std::optional<SplitOutcome> minimal =
        OverlapMinimalSplit(items, node.split_dims, DirMinFillCount());
    if (minimal.has_value()) {
      outcome = std::move(*minimal);
      have_split = true;
    }
  }
  if (!have_split) {
    if (options_.enable_supernodes) {
      // Neither split acceptable: extend into (or grow) a supernode.
      ++node.multiplicity;
      return;
    }
    // Supernodes disabled (plain R*-tree): accept the topological split.
    outcome = TopologicalSplit(items, DirMinFillCount());
  }

  XNode right;
  right.is_leaf = false;
  right.split_dims = node.split_dims | AxisBit(outcome.axis);
  std::vector<XDirEntry> left_entries;
  left_entries.reserve(outcome.left.size());
  for (uint32_t i : outcome.left) left_entries.push_back(node.entries[i]);
  right.entries.reserve(outcome.right.size());
  for (uint32_t i : outcome.right) right.entries.push_back(node.entries[i]);
  node.entries = std::move(left_entries);
  node.split_dims |= AxisBit(outcome.axis);
  // A split (possibly super-) node shrinks to the width its content needs:
  // splitting a wide supernode can still leave more than one block's worth
  // of entries on a side.
  const auto width_for = [this](size_t entries) {
    return static_cast<uint32_t>(
        std::max<size_t>(1, (entries + options_.dir_capacity - 1) /
                                options_.dir_capacity));
  };
  node.multiplicity = width_for(node.entries.size());
  right.multiplicity = width_for(right.entries.size());

  const XNodeIndex right_index = static_cast<XNodeIndex>(nodes_.size());
  nodes_.push_back(std::move(right));
  for (const XDirEntry& e : nodes_[right_index].entries) {
    nodes_[e.child].parent = right_index;
  }
  RecomputeMbr(node_index);
  RecomputeMbr(right_index);
  InstallSplit(node_index, right_index, outcome.axis);
}

// --------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------

namespace {
constexpr uint32_t kXTreeMagic = 0x4d535158;  // "MSQX"
constexpr uint32_t kXTreeVersion = 1;
}  // namespace

Status XTreeBackend::SaveTo(std::ostream& out) {
  MSQ_RETURN_IF_ERROR(WriteU32(out, kXTreeMagic));
  MSQ_RETURN_IF_ERROR(WriteU32(out, kXTreeVersion));
  MSQ_RETURN_IF_ERROR(WriteU32(out, static_cast<uint32_t>(dataset_->dim())));
  MSQ_RETURN_IF_ERROR(WriteU64(out, num_objects_indexed_));
  MSQ_RETURN_IF_ERROR(
      WriteU32(out, static_cast<uint32_t>(options_.leaf_capacity)));
  MSQ_RETURN_IF_ERROR(
      WriteU32(out, static_cast<uint32_t>(options_.dir_capacity)));
  MSQ_RETURN_IF_ERROR(WriteU32(out, root_));
  MSQ_RETURN_IF_ERROR(WriteU32(out, static_cast<uint32_t>(nodes_.size())));
  for (const XNode& node : nodes_) {
    MSQ_RETURN_IF_ERROR(WriteU32(out, node.is_leaf ? 1 : 0));
    MSQ_RETURN_IF_ERROR(WriteU32(out, node.multiplicity));
    MSQ_RETURN_IF_ERROR(WriteU32(out, node.parent));
    MSQ_RETURN_IF_ERROR(WriteU64(out, node.split_dims));
    MSQ_RETURN_IF_ERROR(WriteVector(out, node.mbr.lo()));
    MSQ_RETURN_IF_ERROR(WriteVector(out, node.mbr.hi()));
    // Entry MBRs mirror the child MBRs, so children suffice.
    std::vector<XNodeIndex> children;
    children.reserve(node.entries.size());
    for (const XDirEntry& e : node.entries) children.push_back(e.child);
    MSQ_RETURN_IF_ERROR(WriteVector(out, children));
    MSQ_RETURN_IF_ERROR(WriteVector(out, node.objects));
  }
  if (!out) return Status::IOError("write failed (X-tree index)");
  return Status::OK();
}

Status XTreeBackend::Save(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  MSQ_RETURN_IF_ERROR(SaveTo(out));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<XTreeBackend>> XTreeBackend::Load(
    const std::string& path, std::shared_ptr<const Dataset> dataset,
    std::shared_ptr<const Metric> metric, const XTreeOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadFrom(in, std::move(dataset), std::move(metric), options);
}

StatusOr<std::unique_ptr<XTreeBackend>> XTreeBackend::LoadFrom(
    std::istream& in, std::shared_ptr<const Dataset> dataset,
    std::shared_ptr<const Metric> metric, const XTreeOptions& options) {
  if (dataset == nullptr || dataset->empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  const auto* box = dynamic_cast<const BoxDistanceMetric*>(metric.get());
  if (box == nullptr) {
    return Status::NotSupported("X-tree requires a metric with MINDIST "
                                "support (Lp family); got " + metric->Name());
  }
  uint32_t magic = 0, version = 0, dim = 0;
  MSQ_RETURN_IF_ERROR(ReadU32(in, &magic));
  MSQ_RETURN_IF_ERROR(ReadU32(in, &version));
  if (magic != kXTreeMagic) return Status::Corruption("not an X-tree file");
  if (version != kXTreeVersion) {
    return Status::NotSupported("unsupported X-tree file version");
  }
  MSQ_RETURN_IF_ERROR(ReadU32(in, &dim));
  if (dim != dataset->dim()) {
    return Status::InvalidArgument("index dimensionality mismatch");
  }
  uint64_t indexed = 0;
  MSQ_RETURN_IF_ERROR(ReadU64(in, &indexed));
  if (indexed != dataset->size()) {
    return Status::InvalidArgument("index built over a different dataset");
  }
  XTreeOptions opts = options;
  uint32_t leaf_cap = 0, dir_cap = 0, root = 0, node_count = 0;
  MSQ_RETURN_IF_ERROR(ReadU32(in, &leaf_cap));
  MSQ_RETURN_IF_ERROR(ReadU32(in, &dir_cap));
  MSQ_RETURN_IF_ERROR(ReadU32(in, &root));
  MSQ_RETURN_IF_ERROR(ReadU32(in, &node_count));
  opts.leaf_capacity = leaf_cap;
  opts.dir_capacity = dir_cap;
  if (leaf_cap < 2 || dir_cap < 2 || node_count == 0 ||
      root >= node_count) {
    return Status::Corruption("implausible X-tree header");
  }

  auto tree = std::unique_ptr<XTreeBackend>(
      new XTreeBackend(dataset, std::move(metric), box, opts));
  tree->nodes_.clear();
  tree->nodes_.resize(node_count);
  for (XNode& node : tree->nodes_) {
    uint32_t is_leaf = 0;
    MSQ_RETURN_IF_ERROR(ReadU32(in, &is_leaf));
    node.is_leaf = is_leaf != 0;
    MSQ_RETURN_IF_ERROR(ReadU32(in, &node.multiplicity));
    MSQ_RETURN_IF_ERROR(ReadU32(in, &node.parent));
    MSQ_RETURN_IF_ERROR(ReadU64(in, &node.split_dims));
    Vec lo, hi;
    MSQ_RETURN_IF_ERROR(ReadVector(in, &lo));
    MSQ_RETURN_IF_ERROR(ReadVector(in, &hi));
    if (lo.size() != dim || hi.size() != dim) {
      return Status::Corruption("node MBR dimensionality mismatch");
    }
    node.mbr = Mbr::FromBounds(std::move(lo), std::move(hi));
    std::vector<XNodeIndex> children;
    MSQ_RETURN_IF_ERROR(ReadVector(in, &children));
    for (XNodeIndex child : children) {
      if (child >= node_count) {
        return Status::Corruption("child index out of range");
      }
      node.entries.push_back({Mbr(), child});
    }
    MSQ_RETURN_IF_ERROR(ReadVector(in, &node.objects));
    for (ObjectId id : node.objects) {
      if (id >= dataset->size()) {
        return Status::Corruption("object id out of range");
      }
    }
  }
  // Entry MBRs mirror child MBRs.
  for (XNode& node : tree->nodes_) {
    for (XDirEntry& e : node.entries) {
      e.mbr = tree->nodes_[e.child].mbr;
    }
  }
  tree->root_ = root;
  tree->num_objects_indexed_ = indexed;
  tree->MarkDirty();
  MSQ_RETURN_IF_ERROR(tree->CheckInvariants());
  return tree;
}

// --------------------------------------------------------------------
// Bulk load
// --------------------------------------------------------------------

namespace {

// Dimension of maximum spread over the given points.
size_t MaxSpreadDim(const Dataset& ds, const std::vector<ObjectId>& ids) {
  const size_t dim = ds.dim();
  Vec mins(dim, std::numeric_limits<Scalar>::max());
  Vec maxs(dim, std::numeric_limits<Scalar>::lowest());
  for (ObjectId id : ids) {
    const Vec& v = ds.object(id);
    for (size_t d = 0; d < dim; ++d) {
      mins[d] = std::min(mins[d], v[d]);
      maxs[d] = std::max(maxs[d], v[d]);
    }
  }
  size_t best = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dim; ++d) {
    const double spread = static_cast<double>(maxs[d]) - mins[d];
    if (spread > best_spread) {
      best_spread = spread;
      best = d;
    }
  }
  return best;
}

}  // namespace

void XTreeBackend::BulkBuild() {
  nodes_.clear();
  std::vector<ObjectId> ids(dataset_->size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ObjectId>(i);
  std::vector<XNodeIndex> level = BulkLeaves(&ids);
  while (level.size() > 1) {
    level = BulkGroup(&level);
  }
  root_ = level.front();
  nodes_[root_].parent = kInvalidNode;
  num_objects_indexed_ = dataset_->size();
  MarkDirty();
}

std::vector<XNodeIndex> XTreeBackend::BulkLeaves(std::vector<ObjectId>* ids) {
  const size_t target = std::max<size_t>(
      2, static_cast<size_t>(std::floor(options_.bulk_fill *
                                        static_cast<double>(
                                            options_.leaf_capacity))));
  std::vector<XNodeIndex> leaves;
  // Work stack of (range, inherited split mask) over *ids.
  struct Range {
    size_t from, to;
    uint64_t mask;
  };
  std::vector<Range> stack{{0, ids->size(), 0}};
  while (!stack.empty()) {
    const Range r = stack.back();
    stack.pop_back();
    const size_t n = r.to - r.from;
    if (n <= target || n <= 2) {
      XNode leaf;
      leaf.is_leaf = true;
      leaf.split_dims = r.mask;
      leaf.objects.assign(ids->begin() + static_cast<ptrdiff_t>(r.from),
                          ids->begin() + static_cast<ptrdiff_t>(r.to));
      leaf.mbr = Mbr::Empty(dataset_->dim());
      for (ObjectId id : leaf.objects) {
        leaf.mbr.ExtendPoint(dataset_->object(id));
      }
      leaves.push_back(static_cast<XNodeIndex>(nodes_.size()));
      nodes_.push_back(std::move(leaf));
      continue;
    }
    const std::vector<ObjectId> slice(
        ids->begin() + static_cast<ptrdiff_t>(r.from),
        ids->begin() + static_cast<ptrdiff_t>(r.to));
    const size_t axis = MaxSpreadDim(*dataset_, slice);
    // Cut at a multiple of the leaf target so nearly every leaf comes out
    // `target` full instead of degrading toward target/2 under halving.
    const size_t total_leaves = (n + target - 1) / target;
    const size_t mid = r.from + (total_leaves / 2) * target;
    std::nth_element(ids->begin() + static_cast<ptrdiff_t>(r.from),
                     ids->begin() + static_cast<ptrdiff_t>(mid),
                     ids->begin() + static_cast<ptrdiff_t>(r.to),
                     [&](ObjectId a, ObjectId b) {
                       return dataset_->object(a)[axis] <
                              dataset_->object(b)[axis];
                     });
    const uint64_t mask = r.mask | AxisBit(axis);
    stack.push_back({r.from, mid, mask});
    stack.push_back({mid, r.to, mask});
  }
  return leaves;
}

std::vector<XNodeIndex> XTreeBackend::BulkGroup(
    std::vector<XNodeIndex>* children) {
  const size_t target = std::max<size_t>(
      2, static_cast<size_t>(std::floor(options_.bulk_fill *
                                        static_cast<double>(
                                            options_.dir_capacity))));
  // Centers of the child MBRs drive the partitioning.
  std::vector<Vec> centers(children->size());
  for (size_t i = 0; i < children->size(); ++i) {
    centers[i] = nodes_[(*children)[i]].mbr.Center();
  }
  std::vector<uint32_t> order(children->size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<XNodeIndex> parents;
  struct Range {
    size_t from, to;
    uint64_t mask;
  };
  std::vector<Range> stack{{0, order.size(), 0}};
  while (!stack.empty()) {
    const Range r = stack.back();
    stack.pop_back();
    const size_t n = r.to - r.from;
    if (n <= target || n <= 2) {
      XNode parent;
      parent.is_leaf = false;
      parent.split_dims = r.mask;
      parent.mbr = Mbr::Empty(dataset_->dim());
      const XNodeIndex parent_index = static_cast<XNodeIndex>(nodes_.size());
      for (size_t i = r.from; i < r.to; ++i) {
        const XNodeIndex child = (*children)[order[i]];
        parent.entries.push_back({nodes_[child].mbr, child});
        parent.mbr.ExtendMbr(nodes_[child].mbr);
      }
      nodes_.push_back(std::move(parent));
      for (const XDirEntry& e : nodes_[parent_index].entries) {
        nodes_[e.child].parent = parent_index;
      }
      parents.push_back(parent_index);
      continue;
    }
    // Max-spread dimension of the centers in this range.
    const size_t dim = dataset_->dim();
    size_t axis = 0;
    double best_spread = -1.0;
    for (size_t d = 0; d < dim; ++d) {
      Scalar mn = std::numeric_limits<Scalar>::max();
      Scalar mx = std::numeric_limits<Scalar>::lowest();
      for (size_t i = r.from; i < r.to; ++i) {
        mn = std::min(mn, centers[order[i]][d]);
        mx = std::max(mx, centers[order[i]][d]);
      }
      if (static_cast<double>(mx) - mn > best_spread) {
        best_spread = static_cast<double>(mx) - mn;
        axis = d;
      }
    }
    const size_t total_groups = (n + target - 1) / target;
    const size_t mid = r.from + (total_groups / 2) * target;
    std::nth_element(order.begin() + static_cast<ptrdiff_t>(r.from),
                     order.begin() + static_cast<ptrdiff_t>(mid),
                     order.begin() + static_cast<ptrdiff_t>(r.to),
                     [&](uint32_t a, uint32_t b) {
                       return centers[a][axis] < centers[b][axis];
                     });
    const uint64_t mask = r.mask | AxisBit(axis);
    stack.push_back({r.from, mid, mask});
    stack.push_back({mid, r.to, mask});
  }
  return parents;
}

// --------------------------------------------------------------------
// Finalization and the QueryBackend interface
// --------------------------------------------------------------------

void XTreeBackend::Finalize() {
  // Assign page ids to leaves in DFS order (spatial locality on "disk")
  // and rebuild the data layout.
  std::vector<std::vector<ObjectId>> groups;
  page_to_node_.clear();
  std::vector<XNodeIndex> stack{root_};
  while (!stack.empty()) {
    const XNodeIndex cur = stack.back();
    stack.pop_back();
    XNode& node = nodes_[cur];
    if (node.is_leaf) {
      node.page = static_cast<PageId>(groups.size());
      groups.push_back(node.objects);
      page_to_node_.push_back(cur);
    } else {
      // Push in reverse so DFS visits entries in order.
      for (size_t i = node.entries.size(); i-- > 0;) {
        stack.push_back(node.entries[i].child);
      }
    }
  }
  const XTreeShape shape = Shape();
  const size_t buffer_pages = static_cast<size_t>(
      std::ceil(options_.buffer_fraction *
                static_cast<double>(shape.total_blocks)));
  layout_ = DataLayout::FromGroups(std::move(groups), buffer_pages);
  layout_.MaterializeRows(dataset_->dim(), dataset_->objects());
  layout_.SetMetricsSink(metrics_sink_);
  finalized_ = true;
}

namespace {

/// Hjaltason-Samet priority traversal: directory nodes and leaves ordered
/// by MINDIST to the query object; leaves whose MINDIST exceeds the
/// current query distance are pruned (with everything behind them).
class XTreeStream : public CandidateStream {
 public:
  XTreeStream(const std::vector<XNode>* nodes, XNodeIndex root, Vec point,
              const BoxDistanceMetric* box)
      : nodes_(nodes), point_(std::move(point)), box_(box) {
    queue_.push({(*nodes_)[root].mbr.MinDist(point_, *box_), root});
  }

  bool Next(double query_dist, PageCandidate* out) override {
    while (!queue_.empty()) {
      const Item top = queue_.top();
      // The frontier is sorted by MINDIST: once the nearest candidate is
      // beyond the (only ever shrinking) query distance, all are.
      if (top.min_dist > query_dist) return false;
      queue_.pop();
      const XNode& node = (*nodes_)[top.node];
      if (node.is_leaf) {
        out->page = node.page;
        out->min_dist = top.min_dist;
        return true;
      }
      for (const XDirEntry& entry : node.entries) {
        const double d = entry.mbr.MinDist(point_, *box_);
        if (d <= query_dist) queue_.push({d, entry.child});
      }
    }
    return false;
  }

 private:
  struct Item {
    double min_dist;
    XNodeIndex node;
    bool operator>(const Item& other) const {
      if (min_dist != other.min_dist) return min_dist > other.min_dist;
      return node > other.node;
    }
  };
  const std::vector<XNode>* nodes_;
  Vec point_;
  const BoxDistanceMetric* box_;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue_;
};

}  // namespace

std::unique_ptr<CandidateStream> XTreeBackend::OpenStream(const Query& query,
                                                          QueryStats* stats) {
  (void)stats;  // Directory traversal performs no metered operations.
  if (!finalized_) Finalize();
  return std::make_unique<XTreeStream>(&nodes_, root_, query.point,
                                       box_metric_);
}

double XTreeBackend::PageMinDist(PageId page, const Query& q,
                                 QueryStats* stats) {
  (void)stats;
  if (!finalized_) Finalize();
  assert(page < page_to_node_.size());
  return nodes_[page_to_node_[page]].mbr.MinDist(q.point, *box_metric_);
}

const std::vector<ObjectId>& XTreeBackend::ReadPage(PageId page,
                                                    QueryStats* stats) {
  if (!finalized_) Finalize();
  return layout_.Read(page, stats);
}

StatusOr<const std::vector<ObjectId>*> XTreeBackend::ReadPageChecked(
    PageId page, QueryStats* stats) {
  if (!finalized_) Finalize();
  const std::vector<ObjectId>* out = nullptr;
  MSQ_RETURN_IF_ERROR(layout_.TryRead(page, stats, &out));
  return out;
}

Status XTreeBackend::ReadPageBlockChecked(PageId page, QueryStats* stats,
                                          PageBlock* out) {
  if (!finalized_) Finalize();
  return layout_.TryReadBlock(page, stats, out);
}

DataLayout* XTreeBackend::MutableLayout() {
  if (!finalized_) Finalize();
  return &layout_;
}

Status XTreeBackend::SaveIndex(std::ostream& out) {
  // Finalize first so the saved node -> page assignment is the one the
  // persisted data pages use.
  if (!finalized_) Finalize();
  return SaveTo(out);
}

size_t XTreeBackend::NumDataPages() const {
  // Every leaf is one data page whether or not pages are assigned yet.
  size_t count = 0;
  for (const XNode& n : nodes_) count += n.is_leaf ? 1 : 0;
  return count;
}

void XTreeBackend::ResetIoState() {
  if (!finalized_) Finalize();
  layout_.ResetIoState();
}

XTreeShape XTreeBackend::Shape() const {
  XTreeShape shape;
  size_t filled = 0;
  for (const XNode& n : nodes_) {
    if (n.is_leaf) {
      ++shape.num_leaves;
      ++shape.total_blocks;
      filled += n.objects.size();
    } else {
      ++shape.num_dir_nodes;
      shape.total_blocks += n.multiplicity;
      if (n.multiplicity > 1) ++shape.num_supernodes;
    }
  }
  if (shape.num_leaves > 0) {
    shape.avg_leaf_fill =
        static_cast<double>(filled) /
        (static_cast<double>(shape.num_leaves) *
         static_cast<double>(options_.leaf_capacity));
  }
  // Height: walk from the root to a leaf.
  XNodeIndex cur = root_;
  shape.height = 1;
  while (!nodes_[cur].is_leaf) {
    ++shape.height;
    cur = nodes_[cur].entries.front().child;
  }
  return shape;
}

Status XTreeBackend::CheckInvariants() {
  if (!finalized_) Finalize();
  // Uniform leaf depth + parent/MBR consistency.
  std::vector<std::pair<XNodeIndex, size_t>> stack{{root_, 0}};
  size_t leaf_depth = 0;
  bool saw_leaf = false;
  size_t objects_seen = 0;
  while (!stack.empty()) {
    const auto [cur, depth] = stack.back();
    stack.pop_back();
    const XNode& node = nodes_[cur];
    if (node.is_leaf) {
      if (!saw_leaf) {
        leaf_depth = depth;
        saw_leaf = true;
      } else if (depth != leaf_depth) {
        return Status::Corruption("leaves at different depths");
      }
      if (node.objects.empty() && cur != root_) {
        return Status::Corruption("empty non-root leaf");
      }
      if (node.objects.size() > options_.leaf_capacity) {
        return Status::Corruption("leaf over capacity");
      }
      objects_seen += node.objects.size();
      for (ObjectId id : node.objects) {
        if (!node.mbr.ContainsPoint(dataset_->object(id))) {
          return Status::Corruption("leaf MBR does not contain its object");
        }
      }
    } else {
      if (node.entries.empty()) {
        return Status::Corruption("empty directory node");
      }
      if (node.entries.size() >
          options_.dir_capacity * node.multiplicity) {
        return Status::Corruption("directory node over capacity");
      }
      for (const XDirEntry& e : node.entries) {
        if (nodes_[e.child].parent != cur) {
          return Status::Corruption("broken parent pointer");
        }
        if (!(e.mbr.ContainsMbr(nodes_[e.child].mbr) &&
              nodes_[e.child].mbr.ContainsMbr(e.mbr))) {
          return Status::Corruption("entry MBR differs from child MBR");
        }
        if (!node.mbr.ContainsMbr(e.mbr)) {
          return Status::Corruption("node MBR does not contain entry MBR");
        }
        stack.push_back({e.child, depth + 1});
      }
    }
  }
  if (objects_seen != num_objects_indexed_) {
    return Status::Corruption("indexed object count mismatch");
  }
  return layout_.CheckInvariants();
}

}  // namespace msq
