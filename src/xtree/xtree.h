// X-tree backend (Berchtold, Keim, Kriegel: "The X-tree: An Index Structure
// for High-Dimensional Data", VLDB'96) — the index the paper evaluates
// against the sequential scan.
//
// The X-tree is an R*-tree whose directory refuses to split when splitting
// would produce highly overlapping rectangles: it first tries the R*
// topological split, then an overlap-minimal split guided by the split
// history, and finally extends the node into a *supernode* spanning
// multiple disk blocks. Leaves are data pages; kNN search follows the
// Hjaltason-Samet priority ordering, proven I/O-optimal in [3].

#ifndef MSQ_XTREE_XTREE_H_
#define MSQ_XTREE_XTREE_H_

#include <memory>
#include <vector>

#include "core/backend.h"
#include "dataset/dataset.h"
#include "dist/box_metric.h"
#include "dist/metric.h"
#include "storage/data_layout.h"
#include "xtree/node.h"
#include "xtree/split.h"

namespace msq {

struct XTreeOptions {
  size_t page_size_bytes = kDefaultPageSizeBytes;
  /// Buffer pool capacity as a fraction of the tree's total block count
  /// (Sec. 6 uses 10%).
  double buffer_fraction = 0.10;
  /// Objects per leaf; 0 derives it from the page size and dimensionality.
  size_t leaf_capacity = 0;
  /// Entries per directory block; 0 derives it from the page size.
  size_t dir_capacity = 0;
  /// Minimum fill factor of a split half (R*: 40%).
  double min_fill = 0.4;
  /// Maximum tolerated overlap ratio of a topological directory split
  /// before the overlap-minimal split / supernode path is taken.
  double max_overlap = 0.2;
  /// Disable to degrade the structure to a plain R*-tree (ablation).
  bool enable_supernodes = true;
  /// R* forced reinsertion of leaf entries on first overflow.
  bool enable_reinsert = true;
  /// Fraction of entries removed by a forced reinsert.
  double reinsert_fraction = 0.3;
  /// Target fill factor used by the bulk loader.
  double bulk_fill = 0.75;
};

/// Structural statistics for introspection, tests and benches.
struct XTreeShape {
  size_t height = 0;
  size_t num_leaves = 0;
  size_t num_dir_nodes = 0;
  size_t num_supernodes = 0;
  size_t total_blocks = 0;  // leaves + directory blocks (incl. multiplicity)
  double avg_leaf_fill = 0.0;
};

/// X-tree database organization over an in-memory dataset.
class XTreeBackend : public QueryBackend {
 public:
  /// Bulk load by recursive median partitioning on the dimension of
  /// maximum spread (build cost is not charged to query statistics, like
  /// the paper's offline index construction). The metric must implement
  /// BoxDistanceMetric (Lp family); others are rejected as NotSupported.
  static StatusOr<std::unique_ptr<XTreeBackend>> BulkLoad(
      std::shared_ptr<const Dataset> dataset,
      std::shared_ptr<const Metric> metric, const XTreeOptions& options);

  /// Builds by repeated dynamic insertion (exercises the full R*/X split
  /// machinery; slower than BulkLoad).
  static StatusOr<std::unique_ptr<XTreeBackend>> BuildByInsertion(
      std::shared_ptr<const Dataset> dataset,
      std::shared_ptr<const Metric> metric, const XTreeOptions& options);

  /// Inserts one dataset object (id must be valid for the dataset). The
  /// tree re-finalizes its page layout lazily before the next query.
  Status Insert(ObjectId id);

  /// Persists the index structure (not the objects — those live in the
  /// dataset) to a binary file.
  Status Save(const std::string& path);

  /// Serializes the index structure to a stream (the format behind Save;
  /// also what the single-file page store embeds as its "index" object).
  Status SaveTo(std::ostream& out);

  /// Restores an index saved with Save. The dataset must be the one the
  /// index was built over (size and dimensionality are verified).
  static StatusOr<std::unique_ptr<XTreeBackend>> Load(
      const std::string& path, std::shared_ptr<const Dataset> dataset,
      std::shared_ptr<const Metric> metric, const XTreeOptions& options);

  /// Stream counterpart of Load.
  static StatusOr<std::unique_ptr<XTreeBackend>> LoadFrom(
      std::istream& in, std::shared_ptr<const Dataset> dataset,
      std::shared_ptr<const Metric> metric, const XTreeOptions& options);

  // --- QueryBackend --------------------------------------------------
  std::string Name() const override { return "xtree"; }
  std::unique_ptr<CandidateStream> OpenStream(const Query& query,
                                              QueryStats* stats) override;
  double PageMinDist(PageId page, const Query& q, QueryStats* stats) override;
  const std::vector<ObjectId>& ReadPage(PageId page,
                                        QueryStats* stats) override;
  StatusOr<const std::vector<ObjectId>*> ReadPageChecked(
      PageId page, QueryStats* stats) override;
  Status ReadPageBlockChecked(PageId page, QueryStats* stats,
                              PageBlock* out) override;
  DataLayout* MutableLayout() override;
  Status SaveIndex(std::ostream& out) override;
  size_t NumDataPages() const override;
  size_t NumObjects() const override { return dataset_->size(); }
  const Vec& ObjectVec(ObjectId id) const override {
    return dataset_->object(id);
  }
  void ResetIoState() override;
  void NoteFailedRead(QueryStats* stats) override {
    layout_.NoteFailedRead(stats);
  }
  /// Remembered so the lazy Finalize() (which rebuilds layout_ wholesale)
  /// can re-attach the sink to the new buffer pool.
  void SetMetricsSink(const obs::MetricsSink* sink) override {
    metrics_sink_ = sink;
    layout_.SetMetricsSink(sink);
  }

  // --- introspection ---------------------------------------------------
  XTreeShape Shape() const;

  /// Verifies MBR containment, parent/child consistency, uniform leaf
  /// depth, capacity bounds, and the object partition.
  Status CheckInvariants();

 private:
  XTreeBackend(std::shared_ptr<const Dataset> dataset,
               std::shared_ptr<const Metric> metric,
               const BoxDistanceMetric* box_metric, XTreeOptions options);

  friend class XTreeStream;

  // Dynamic-insertion internals.
  XNodeIndex ChooseSubtree(const Vec& p) const;
  void InsertIntoLeaf(XNodeIndex leaf, ObjectId id, bool may_reinsert);
  void HandleLeafOverflow(XNodeIndex leaf, bool may_reinsert);
  void ReinsertLeafEntries(XNodeIndex leaf);
  void SplitLeaf(XNodeIndex leaf);
  void HandleDirOverflow(XNodeIndex node);
  /// Installs `right` as a sibling of `node` (split along `axis`).
  void InstallSplit(XNodeIndex node, XNodeIndex right, size_t axis);
  void RecomputeMbr(XNodeIndex node);
  void TightenAncestors(XNodeIndex node);
  void ExtendAncestors(XNodeIndex node, const Vec& p);
  size_t LeafMinFillCount() const;
  size_t DirMinFillCount() const;

  // Bulk-load internals.
  void BulkBuild();
  std::vector<XNodeIndex> BulkLeaves(std::vector<ObjectId>* ids);
  std::vector<XNodeIndex> BulkGroup(std::vector<XNodeIndex>* children);

  /// Assigns leaf pages in DFS order and rebuilds the data layout.
  void Finalize();
  void MarkDirty() { finalized_ = false; }

  std::shared_ptr<const Dataset> dataset_;
  std::shared_ptr<const Metric> metric_;
  const BoxDistanceMetric* box_metric_;  // view into *metric_
  XTreeOptions options_;

  std::vector<XNode> nodes_;
  XNodeIndex root_ = kInvalidNode;
  size_t num_objects_indexed_ = 0;

  bool finalized_ = false;
  DataLayout layout_;
  const obs::MetricsSink* metrics_sink_ = nullptr;
  std::vector<XNodeIndex> page_to_node_;
};

}  // namespace msq

#endif  // MSQ_XTREE_XTREE_H_
