// Tests for the query model (Definitions 1-3) and the AnswerList
// accumulator of Figure 1.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/answer_list.h"
#include "core/query.h"

namespace msq {
namespace {

TEST(QueryTypeTest, RangeSpecialization) {
  const QueryType t = QueryType::Range(0.5);
  EXPECT_EQ(t.kind, QueryKind::kRange);
  EXPECT_DOUBLE_EQ(t.range, 0.5);
  EXPECT_EQ(t.cardinality, kUnboundedCardinality);
  EXPECT_FALSE(t.Adaptive());
}

TEST(QueryTypeTest, KnnSpecialization) {
  const QueryType t = QueryType::Knn(7);
  EXPECT_EQ(t.kind, QueryKind::kNearestNeighbor);
  EXPECT_TRUE(std::isinf(t.range));
  EXPECT_EQ(t.cardinality, 7u);
  EXPECT_TRUE(t.Adaptive());
}

TEST(QueryTypeTest, BoundedKnnSpecialization) {
  const QueryType t = QueryType::BoundedKnn(3, 0.2);
  EXPECT_EQ(t.kind, QueryKind::kBoundedNearestNeighbor);
  EXPECT_DOUBLE_EQ(t.range, 0.2);
  EXPECT_EQ(t.cardinality, 3u);
  EXPECT_TRUE(t.Adaptive());
}

TEST(QueryTypeTest, ToStringNamesTheKind) {
  EXPECT_NE(QueryType::Range(1).ToString().find("range"), std::string::npos);
  EXPECT_NE(QueryType::Knn(5).ToString().find("knn"), std::string::npos);
  EXPECT_NE(QueryType::BoundedKnn(5, 1).ToString().find("bounded"),
            std::string::npos);
}

TEST(NeighborTest, OrderIsDistanceThenId) {
  const Neighbor a{1, 0.5}, b{2, 0.5}, c{0, 0.7};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_FALSE(c < a);
}

// ---------------------------------------------------------------------
// Range semantics
// ---------------------------------------------------------------------

TEST(AnswerListTest, RangeAcceptsWithinEpsOnly) {
  AnswerList list(QueryType::Range(1.0));
  EXPECT_TRUE(list.Offer(1, 0.5));
  EXPECT_TRUE(list.Offer(2, 1.0));  // boundary is inclusive (Definition 2)
  EXPECT_FALSE(list.Offer(3, 1.0001));
  EXPECT_EQ(list.size(), 2u);
}

TEST(AnswerListTest, RangeQueryDistNeverAdapts) {
  AnswerList list(QueryType::Range(1.0));
  for (ObjectId id = 0; id < 100; ++id) list.Offer(id, 0.001 * id);
  EXPECT_DOUBLE_EQ(list.QueryDist(), 1.0);
}

TEST(AnswerListTest, RangeKeepsAnswersSorted) {
  AnswerList list(QueryType::Range(10.0));
  list.Offer(1, 3.0);
  list.Offer(2, 1.0);
  list.Offer(3, 2.0);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.answers()[0].id, 2u);
  EXPECT_EQ(list.answers()[1].id, 3u);
  EXPECT_EQ(list.answers()[2].id, 1u);
}

// ---------------------------------------------------------------------
// kNN semantics
// ---------------------------------------------------------------------

TEST(AnswerListTest, KnnQueryDistStartsInfinite) {
  AnswerList list(QueryType::Knn(3));
  EXPECT_TRUE(std::isinf(list.QueryDist()));
  list.Offer(1, 5.0);
  list.Offer(2, 3.0);
  EXPECT_TRUE(std::isinf(list.QueryDist()));  // not yet k answers
  list.Offer(3, 4.0);
  EXPECT_DOUBLE_EQ(list.QueryDist(), 5.0);  // k-th distance
}

TEST(AnswerListTest, KnnEvictsWorstOnOverflow) {
  AnswerList list(QueryType::Knn(2));
  list.Offer(1, 5.0);
  list.Offer(2, 3.0);
  EXPECT_TRUE(list.Offer(3, 1.0));  // evicts id 1
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.answers()[0].id, 3u);
  EXPECT_EQ(list.answers()[1].id, 2u);
  EXPECT_DOUBLE_EQ(list.QueryDist(), 3.0);
}

TEST(AnswerListTest, KnnRejectsWorseThanWorstWhenFull) {
  AnswerList list(QueryType::Knn(2));
  list.Offer(1, 1.0);
  list.Offer(2, 2.0);
  EXPECT_FALSE(list.Offer(3, 3.0));
  EXPECT_EQ(list.size(), 2u);
}

TEST(AnswerListTest, KnnDistanceTieBrokenBySmallerId) {
  AnswerList list(QueryType::Knn(2));
  list.Offer(5, 1.0);
  list.Offer(9, 2.0);
  // Same distance as the worst answer but smaller id: wins the tie.
  EXPECT_TRUE(list.Offer(3, 2.0));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.answers()[1].id, 3u);
  // Larger id at the same distance loses.
  EXPECT_FALSE(list.Offer(7, 2.0));
}

TEST(AnswerListTest, KnnQueryDistShrinksMonotonically) {
  AnswerList list(QueryType::Knn(3));
  double prev = std::numeric_limits<double>::infinity();
  for (ObjectId id = 0; id < 50; ++id) {
    list.Offer(id, 50.0 - id);
    EXPECT_LE(list.QueryDist(), prev);
    prev = list.QueryDist();
  }
}

TEST(AnswerListTest, QualifiesTracksOfferForKnn) {
  AnswerList list(QueryType::Knn(2));
  list.Offer(1, 1.0);
  list.Offer(2, 2.0);
  EXPECT_TRUE(list.Qualifies(1.5));
  EXPECT_TRUE(list.Qualifies(2.0));  // ties can still win by id
  EXPECT_FALSE(list.Qualifies(2.5));
}

// ---------------------------------------------------------------------
// Bounded kNN semantics
// ---------------------------------------------------------------------

TEST(AnswerListTest, BoundedKnnAppliesBothBounds) {
  AnswerList list(QueryType::BoundedKnn(2, 1.0));
  EXPECT_FALSE(list.Offer(1, 1.5));  // beyond eps even though list empty
  EXPECT_TRUE(list.Offer(2, 0.9));
  EXPECT_TRUE(list.Offer(3, 0.5));
  EXPECT_TRUE(list.Offer(4, 0.1));  // evicts id 2
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.answers()[0].id, 4u);
  EXPECT_EQ(list.answers()[1].id, 3u);
}

TEST(AnswerListTest, BoundedKnnQueryDistIsMinOfEpsAndKth) {
  AnswerList list(QueryType::BoundedKnn(2, 1.0));
  EXPECT_DOUBLE_EQ(list.QueryDist(), 1.0);  // eps while unsaturated
  list.Offer(1, 0.3);
  list.Offer(2, 0.6);
  EXPECT_DOUBLE_EQ(list.QueryDist(), 0.6);  // kth distance once full
}

}  // namespace
}  // namespace msq
