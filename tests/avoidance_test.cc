// Stats-exact regression tests for CanAvoidDistance's try accounting (one
// inequality evaluated = one `triangle_tries`, the paper's avoiding_tries)
// and for the witness cap (a capped scan charges exactly 2 * max_witnesses
// tries — the cap check runs before a witness is charged), plus a
// shifting-window stress test that drives QueryDistanceCache across its
// compaction threshold and checks no index issued by the current Prepare
// ever reads a stale or remapped row.

#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/avoidance.h"
#include "core/database.h"
#include "core/distance_matrix.h"
#include "core/multi_query.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "dist/counting_metric.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

/// A cache holding two 1-d query objects at x = 0 and x = 10, so
/// dist(Q0, Q1) = 10 exactly. Returns their cache indices.
struct TwoQueryCache {
  QueryDistanceCache cache;
  uint32_t q0, q1;

  TwoQueryCache() {
    CountingMetric metric(std::make_shared<EuclideanMetric>());
    std::vector<Query> queries(2);
    queries[0] = Query{/*id=*/1, Vec{0.0f}, QueryType::Range(1.0)};
    queries[1] = Query{/*id=*/2, Vec{10.0f}, QueryType::Range(1.0)};
    std::vector<uint32_t> indices;
    cache.Prepare(queries, metric, &indices);
    q0 = indices[0];
    q1 = indices[1];
  }
};

// Lemma 1 fires on the first inequality of the first witness: exactly one
// try and one avoided, never a second (Lemma 2) try for the same witness.
TEST(AvoidanceTriesTest, Lemma1SuccessChargesExactlyOneTry) {
  TwoQueryCache c;
  QueryStats stats;
  // dist(O, Q0) = 100 > qq + query_dist = 10 + 1.
  std::vector<KnownQueryDistance> known = {{c.q0, 100.0}};
  EXPECT_TRUE(CanAvoidDistance(c.cache, known, c.q1, 1.0, &stats));
  EXPECT_EQ(stats.triangle_tries, 1u);
  EXPECT_EQ(stats.triangle_avoided, 1u);
}

// Lemma 2 fires only after Lemma 1 was evaluated and failed: two tries.
TEST(AvoidanceTriesTest, Lemma2SuccessChargesExactlyTwoTries) {
  TwoQueryCache c;
  QueryStats stats;
  // Lemma 1: 2 > 10 + 1 fails; Lemma 2: 10 > 2 + 1 succeeds.
  std::vector<KnownQueryDistance> known = {{c.q0, 2.0}};
  EXPECT_TRUE(CanAvoidDistance(c.cache, known, c.q1, 1.0, &stats));
  EXPECT_EQ(stats.triangle_tries, 2u);
  EXPECT_EQ(stats.triangle_avoided, 1u);
}

// A witness that proves nothing charges both of its inequalities.
TEST(AvoidanceTriesTest, FailedWitnessChargesExactlyTwoTries) {
  TwoQueryCache c;
  QueryStats stats;
  // Lemma 1: 10 > 11 fails; Lemma 2: 10 > 11 fails.
  std::vector<KnownQueryDistance> known = {{c.q0, 10.0}};
  EXPECT_FALSE(CanAvoidDistance(c.cache, known, c.q1, 1.0, &stats));
  EXPECT_EQ(stats.triangle_tries, 2u);
  EXPECT_EQ(stats.triangle_avoided, 0u);
}

// The premises are strict: equality proves only dist >= query_dist, and an
// object exactly at the query distance can still qualify, so no avoidance.
TEST(AvoidanceTriesTest, ExactBoundaryWitnessDoesNotAvoid) {
  TwoQueryCache c;
  QueryStats stats;
  // Lemma 1 premise at equality: 12 > 10 + 2 is false.
  std::vector<KnownQueryDistance> known = {{c.q0, 12.0}};
  EXPECT_FALSE(CanAvoidDistance(c.cache, known, c.q1, 2.0, &stats));
  // Lemma 2 premise at equality: qq = dist + query_dist -> 10 > 8 + 2 false.
  known = {{c.q0, 8.0}};
  EXPECT_FALSE(CanAvoidDistance(c.cache, known, c.q1, 2.0, &stats));
  EXPECT_EQ(stats.triangle_avoided, 0u);
}

// The cap check runs before a witness is charged: a failed scan of a list
// longer than the cap charges exactly 2 * max_witnesses tries — no stray
// try for witness max_witnesses + 1.
TEST(AvoidanceTriesTest, WitnessCapChargesExactlyTwiceTheCap) {
  TwoQueryCache c;
  for (size_t cap : {size_t{1}, size_t{3}, kDefaultMaxWitnesses, size_t{16}}) {
    QueryStats stats;
    // cap + 5 all-failing witnesses (each would charge 2 tries uncapped).
    std::vector<KnownQueryDistance> known(cap + 5,
                                          KnownQueryDistance{c.q0, 10.0});
    EXPECT_FALSE(CanAvoidDistance(c.cache, known, c.q1, 1.0, &stats, cap));
    EXPECT_EQ(stats.triangle_tries, 2 * cap) << "cap=" << cap;
    EXPECT_EQ(stats.triangle_avoided, 0u);
  }
}

// Cap zero disables avoidance outright: nothing examined, nothing charged,
// even when the first witness would have succeeded.
TEST(AvoidanceTriesTest, ZeroCapChargesNothing) {
  TwoQueryCache c;
  QueryStats stats;
  std::vector<KnownQueryDistance> known = {{c.q0, 100.0}};
  EXPECT_FALSE(CanAvoidDistance(c.cache, known, c.q1, 1.0, &stats,
                                /*max_witnesses=*/0));
  EXPECT_EQ(stats.triangle_tries, 0u);
  EXPECT_EQ(stats.triangle_avoided, 0u);
}

// An unsaturated kNN query (infinite query distance) can never be avoided
// and must not be charged for the attempt.
TEST(AvoidanceTriesTest, InfiniteQueryDistanceChargesNothing) {
  TwoQueryCache c;
  QueryStats stats;
  std::vector<KnownQueryDistance> known = {{c.q0, 100.0}};
  EXPECT_FALSE(CanAvoidDistance(c.cache, known, c.q1,
                                std::numeric_limits<double>::infinity(),
                                &stats));
  EXPECT_EQ(stats.triangle_tries, 0u);
}

// The engine default and the library-wide default are the same constant —
// the config drift this suite pins against.
TEST(AvoidanceTriesTest, EngineDefaultMatchesLibraryDefault) {
  EXPECT_EQ(MultiQueryOptions{}.avoidance_max_witnesses, kDefaultMaxWitnesses);
}

// --- shifting-window compaction stress ----------------------------------

// Slide a window of 4 queries over 40 distinct query objects with a tiny
// compaction threshold: every Prepare past the threshold compacts and
// renumbers, and every index it issues must still read the exact pairwise
// distance (ASan catches any stale row access).
TEST(AvoidanceCompactionStressTest, IndicesValidAfterEveryCompaction) {
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  QueryDistanceCache cache(/*compact_threshold=*/8);

  std::vector<Query> all;
  for (uint64_t i = 0; i < 40; ++i) {
    all.push_back(Query{/*id=*/100 + i,
                        Vec{static_cast<float>(i * 3.5), static_cast<float>(i)},
                        QueryType::Range(1.0)});
  }
  const size_t kWindow = 4;
  for (size_t start = 0; start + kWindow <= all.size(); ++start) {
    std::span<const Query> window(all.data() + start, kWindow);
    std::vector<uint32_t> indices;
    cache.Prepare(window, metric, &indices);
    ASSERT_EQ(indices.size(), kWindow);
    for (size_t a = 0; a < kWindow; ++a) {
      for (size_t b = 0; b < kWindow; ++b) {
        const double expected = metric.base().Distance(window[a].point,
                                                       window[b].point);
        ASSERT_EQ(cache.Dist(indices[a], indices[b]), expected)
            << "window start " << start << " pair (" << a << "," << b << ")";
      }
    }
    // The cache never grows past threshold + window (compaction works).
    ASSERT_LE(cache.size(), 8u + kWindow);
  }
}

// Full-engine variant: shifting windows through MultipleSimilarityQuery
// drive the engine's own cache (threshold = max_batch_size * 2 + 64) across
// compaction, with avoidance armed; every completed primary answer must
// match the brute-force oracle.
TEST(AvoidanceCompactionStressTest, EngineWindowsSurviveCompaction) {
  Dataset dataset = MakeGaussianClustersDataset(500, 6, 5, 0.1, 83);
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.page_size_bytes = 1024;
  options.multi.max_batch_size = 4;  // compaction threshold = 72
  auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                 options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EuclideanMetric oracle_metric;

  // 120 distinct query objects, window of 4: crosses the threshold many
  // times; each call's primary answer is complete and checkable.
  std::vector<Query> all;
  for (ObjectId id = 0; id < 120; ++id) {
    all.push_back((*db)->MakeObjectKnnQuery(id, 8));
  }
  for (size_t start = 0; start + 4 <= all.size(); start += 1) {
    std::vector<Query> window(all.begin() + start, all.begin() + start + 4);
    auto result = (*db)->MultipleSimilarityQuery(window);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->status.ok());
    EXPECT_TRUE(SameAnswers(
        result->answers[0],
        BruteForceQuery(dataset, oracle_metric, window[0])))
        << "window start " << start;
  }
}

}  // namespace
}  // namespace msq
