// Tests for the common substrate: Status/StatusOr, Rng, QueryStats and the
// cost model, and the flag parser.

#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace msq {
namespace {

// ---------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad eps");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eps");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() -> Status { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    MSQ_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextIndexInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextIndex(17), 17u);
  }
}

TEST(RngTest, NextIndexCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextIndex(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesAlpha) {
  Rng rng(15);
  for (double alpha : {0.5, 1.0, 3.0, 10.0}) {
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.NextGamma(alpha);
    EXPECT_NEAR(sum / n, alpha, alpha * 0.05) << "alpha=" << alpha;
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(17);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkedGeneratorsAreIndependent) {
  Rng parent(21);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------------
// QueryStats / CostModel
// ---------------------------------------------------------------------

TEST(CostModelTest, ReproducesPaperUnitCosts) {
  // Sec. 6.2: 4.3 us at d=20, 12.7 us at d=64.
  CostModel model;
  EXPECT_NEAR(model.DistMicros(20), 4.3, 0.01);
  EXPECT_NEAR(model.DistMicros(64), 12.7, 0.01);
  EXPECT_DOUBLE_EQ(model.triangle_cmp_micros, 0.082);
}

TEST(CostModelTest, PaperSpeedFactorsOfDistanceVsComparison) {
  // The paper reports factors of 52 (20-d) and 155 (64-d).
  CostModel model;
  EXPECT_NEAR(model.DistMicros(20) / model.triangle_cmp_micros, 52.0, 1.0);
  EXPECT_NEAR(model.DistMicros(64) / model.triangle_cmp_micros, 155.0, 1.0);
}

TEST(QueryStatsTest, IoMillisSplitsRandomAndSequential) {
  CostModel model;
  model.random_page_ms = 10.0;
  model.seq_page_ms = 1.0;
  QueryStats stats;
  stats.random_page_reads = 3;
  stats.seq_page_reads = 7;
  EXPECT_DOUBLE_EQ(stats.IoMillis(model), 37.0);
}

TEST(QueryStatsTest, CpuMillisCountsMatrixAndTriangleCosts) {
  CostModel model;
  QueryStats stats;
  stats.dist_computations = 1000;
  stats.matrix_dist_computations = 500;
  stats.triangle_tries = 10000;
  const double expected =
      (1500 * model.DistMicros(20) + 10000 * model.triangle_cmp_micros) /
      1000.0;
  EXPECT_DOUBLE_EQ(stats.CpuMillis(model, 20), expected);
}

TEST(QueryStatsTest, AdditionAggregatesEveryField) {
  QueryStats a, b;
  a.dist_computations = 1;
  a.matrix_dist_computations = 2;
  a.triangle_tries = 3;
  a.triangle_avoided = 4;
  a.random_page_reads = 5;
  a.seq_page_reads = 6;
  a.buffer_hits = 7;
  a.pages_skipped_buffered = 8;
  a.queries_completed = 9;
  a.answers_produced = 10;
  b = a;
  a += b;
  EXPECT_EQ(a.dist_computations, 2u);
  EXPECT_EQ(a.matrix_dist_computations, 4u);
  EXPECT_EQ(a.triangle_tries, 6u);
  EXPECT_EQ(a.triangle_avoided, 8u);
  EXPECT_EQ(a.random_page_reads, 10u);
  EXPECT_EQ(a.seq_page_reads, 12u);
  EXPECT_EQ(a.buffer_hits, 14u);
  EXPECT_EQ(a.pages_skipped_buffered, 16u);
  EXPECT_EQ(a.queries_completed, 18u);
  EXPECT_EQ(a.answers_produced, 20u);
}

TEST(QueryStatsTest, SubtractionIsInverseOfAddition) {
  QueryStats a, b;
  a.dist_computations = 10;
  a.seq_page_reads = 20;
  b.dist_computations = 4;
  b.seq_page_reads = 5;
  QueryStats sum = a;
  sum += b;
  const QueryStats diff = sum - b;
  EXPECT_EQ(diff.dist_computations, a.dist_computations);
  EXPECT_EQ(diff.seq_page_reads, a.seq_page_reads);
}

TEST(QueryStatsTest, ToStringMentionsKeyCounters) {
  QueryStats stats;
  stats.dist_computations = 42;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("dist=42"), std::string::npos);
}

// ---------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------

TEST(FlagsTest, DefaultsApplyWithoutArguments) {
  Flags flags;
  flags.Define("n", "100", "object count");
  char prog[] = "prog";
  char* argv[] = {prog};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("n"), 100);
}

TEST(FlagsTest, ParsesKeyValueAndDashedForms) {
  Flags flags;
  flags.Define("n", "100", "object count");
  flags.Define("name", "x", "label");
  char prog[] = "prog";
  char a1[] = "n=250";
  char a2[] = "--name=hello";
  char* argv[] = {prog, a1, a2};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt("n"), 250);
  EXPECT_EQ(flags.GetString("name"), "hello");
}

TEST(FlagsTest, RejectsUnknownKey) {
  Flags flags;
  flags.Define("n", "100", "object count");
  char prog[] = "prog";
  char a1[] = "m=3";
  char* argv[] = {prog, a1};
  EXPECT_TRUE(flags.Parse(2, argv).IsInvalidArgument());
}

TEST(FlagsTest, RejectsMissingEquals) {
  Flags flags;
  flags.Define("n", "100", "object count");
  char prog[] = "prog";
  char a1[] = "n";
  char* argv[] = {prog, a1};
  EXPECT_TRUE(flags.Parse(2, argv).IsInvalidArgument());
}

TEST(FlagsTest, ParsesDoubleBoolAndList) {
  Flags flags;
  flags.Define("eps", "0.5", "radius");
  flags.Define("verbose", "false", "chatty");
  flags.Define("ms", "1,10,100", "batch sizes");
  char prog[] = "prog";
  char a1[] = "eps=0.25";
  char a2[] = "verbose=true";
  char* argv[] = {prog, a1, a2};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetIntList("ms"), (std::vector<int64_t>{1, 10, 100}));
}

TEST(FlagsTest, HelpReturnsNotFoundWithUsage) {
  Flags flags;
  flags.Define("n", "100", "object count");
  char prog[] = "prog";
  char a1[] = "--help";
  char* argv[] = {prog, a1};
  const Status s = flags.Parse(2, argv);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_NE(s.message().find("usage"), std::string::npos);
}

}  // namespace
}  // namespace msq
