// Tests of the MetricDatabase facade: construction paths, query factory
// methods, statistics surface, cost model wiring, and cross-backend /
// cross-page-size equivalence sweeps.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "dist/edit_distance.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

TEST(DatabaseTest, OpenRejectsEmptyDataset) {
  auto db = MetricDatabase::Open(Dataset(),
                                 std::make_shared<EuclideanMetric>(), {});
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(DatabaseTest, OpenRejectsNullMetric) {
  auto db = MetricDatabase::Open(MakeUniformDataset(10, 2, 1), nullptr, {});
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(DatabaseTest, OpenRejectsXTreeWithNonBoxMetric) {
  DatabaseOptions options;
  options.backend = BackendKind::kXTree;
  auto db = MetricDatabase::Open(MakeUniformDataset(100, 4, 2),
                                 std::make_shared<AngularMetric>(), options);
  EXPECT_TRUE(db.status().IsNotSupported());
}

TEST(DatabaseTest, MTreeAcceptsAnyMetric) {
  DatabaseOptions options;
  options.backend = BackendKind::kMTree;
  auto db = MetricDatabase::Open(MakeSessionDataset(200, 4, 30, 12, 3),
                                 std::make_shared<EditDistanceMetric>(),
                                 options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto got = (*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(5, 3));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0].id, 5u);
}

TEST(DatabaseTest, BackendKindNamesAreStable) {
  EXPECT_EQ(BackendKindName(BackendKind::kLinearScan), "linear_scan");
  EXPECT_EQ(BackendKindName(BackendKind::kXTree), "xtree");
  EXPECT_EQ(BackendKindName(BackendKind::kMTree), "mtree");
  EXPECT_EQ(BackendKindName(BackendKind::kVaFile), "va_file");
}

TEST(DatabaseTest, FreshQueryIdsNeverCollideWithObjectIds) {
  auto db = MetricDatabase::Open(MakeUniformDataset(100, 3, 5),
                                 std::make_shared<EuclideanMetric>(), {});
  ASSERT_TRUE(db.ok());
  const Query a = (*db)->MakeKnnQuery(Vec{0, 0, 0}, 3);
  const Query b = (*db)->MakeRangeQuery(Vec{0, 0, 0}, 0.5);
  EXPECT_NE(a.id, b.id);
  EXPECT_GE(a.id, static_cast<QueryId>(1) << 32);
  const Query obj = (*db)->MakeObjectKnnQuery(7, 3);
  EXPECT_EQ(obj.id, 7u);
  EXPECT_EQ(obj.point, (*db)->dataset().object(7));
}

TEST(DatabaseTest, QueryFactoriesSetTypes) {
  auto db = MetricDatabase::Open(MakeUniformDataset(50, 2, 7),
                                 std::make_shared<EuclideanMetric>(), {});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->MakeKnnQuery(Vec{0, 0}, 5).type.kind,
            QueryKind::kNearestNeighbor);
  EXPECT_EQ((*db)->MakeRangeQuery(Vec{0, 0}, 0.1).type.kind,
            QueryKind::kRange);
  const Query b = (*db)->MakeBoundedKnnQuery(Vec{0, 0}, 5, 0.1);
  EXPECT_EQ(b.type.kind, QueryKind::kBoundedNearestNeighbor);
  EXPECT_EQ(b.type.cardinality, 5u);
  EXPECT_DOUBLE_EQ(b.type.range, 0.1);
}

TEST(DatabaseTest, StatsAccumulateAcrossQueriesAndReset) {
  auto db = MetricDatabase::Open(MakeUniformDataset(500, 4, 9),
                                 std::make_shared<EuclideanMetric>(), {});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(1, 3)).ok());
  const uint64_t after_one = (*db)->stats().dist_computations;
  ASSERT_TRUE((*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(2, 3)).ok());
  EXPECT_GT((*db)->stats().dist_computations, after_one);
  (*db)->ResetStats();
  EXPECT_EQ((*db)->stats().dist_computations, 0u);
}

TEST(DatabaseTest, ModeledCostsFollowTheCostModel) {
  DatabaseOptions options;
  options.cost_model.random_page_ms = 100.0;
  options.cost_model.seq_page_ms = 1.0;
  auto db = MetricDatabase::Open(MakeUniformDataset(2000, 8, 11),
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(0, 5)).ok());
  const QueryStats& s = (*db)->stats();
  EXPECT_DOUBLE_EQ((*db)->ModeledIoMillis(),
                   100.0 * s.random_page_reads + 1.0 * s.seq_page_reads);
  EXPECT_DOUBLE_EQ(
      (*db)->ModeledTotalMillis(),
      (*db)->ModeledIoMillis() + (*db)->ModeledCpuMillis());
}

TEST(DatabaseTest, BoundedKnnThroughFacadeMatchesBruteForce) {
  Dataset dataset = MakeGaussianClustersDataset(800, 4, 5, 0.05, 13);
  EuclideanMetric metric;
  for (BackendKind backend :
       {BackendKind::kLinearScan, BackendKind::kXTree, BackendKind::kMTree,
        BackendKind::kVaFile}) {
    DatabaseOptions options;
    options.backend = backend;
    options.page_size_bytes = 1024;
    auto db = MetricDatabase::Open(dataset,
                                   std::make_shared<EuclideanMetric>(),
                                   options);
    ASSERT_TRUE(db.ok()) << BackendKindName(backend);
    const Query q = (*db)->MakeBoundedKnnQuery(dataset.object(3), 7, 0.15);
    auto got = (*db)->SimilarityQuery(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(SameAnswers(*got, BruteForceQuery(dataset, metric, q)))
        << BackendKindName(backend);
  }
}

// Cross-page-size equivalence: results must not depend on the physical
// page size (a pure performance knob).
class PageSizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PageSizeSweepTest, MultiQueryResultsIndependentOfPageSize) {
  Dataset dataset = MakeGaussianClustersDataset(700, 5, 5, 0.05, 15);
  EuclideanMetric metric;
  DatabaseOptions options;
  options.backend = BackendKind::kXTree;
  options.page_size_bytes = GetParam();
  auto db = MetricDatabase::Open(dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::vector<Query> batch;
  for (ObjectId id : {3u, 77u, 200u, 431u, 650u}) {
    batch.push_back((*db)->MakeObjectKnnQuery(id, 9));
  }
  auto all = (*db)->MultipleSimilarityQueryAll(batch);
  ASSERT_TRUE(all.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*all)[i],
                            BruteForceQuery(dataset, metric, batch[i])))
        << "page_size=" << GetParam() << " query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PageSizeSweepTest,
                         ::testing::Values(512, 1024, 4096, 32768));

// Witness-cap sweep: the avoidance cap is a performance knob and must
// never change results.
class WitnessCapSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WitnessCapSweepTest, ResultsIndependentOfAvoidanceCap) {
  Dataset dataset = MakeGaussianClustersDataset(900, 5, 6, 0.04, 17);
  EuclideanMetric metric;
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.page_size_bytes = 2048;
  options.multi.avoidance_max_witnesses = GetParam();
  auto db = MetricDatabase::Open(dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  ASSERT_TRUE(db.ok());
  Rng rng(19);
  std::vector<Query> batch;
  for (uint64_t id : rng.SampleWithoutReplacement(dataset.size(), 20)) {
    batch.push_back((*db)->MakeObjectKnnQuery(static_cast<ObjectId>(id), 6));
  }
  auto all = (*db)->MultipleSimilarityQueryAll(batch);
  ASSERT_TRUE(all.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*all)[i],
                            BruteForceQuery(dataset, metric, batch[i])))
        << "cap=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, WitnessCapSweepTest,
                         ::testing::Values(0, 1, 4, 64, 10000));

TEST(DatabaseTest, DynamicXTreeBuildMatchesBulkLoadResults) {
  Dataset dataset = MakeGaussianClustersDataset(600, 4, 4, 0.05, 21);
  EuclideanMetric metric;
  std::vector<AnswerSet> results[2];
  for (int dynamic = 0; dynamic < 2; ++dynamic) {
    DatabaseOptions options;
    options.backend = BackendKind::kXTree;
    options.page_size_bytes = 1024;
    options.xtree_dynamic_build = (dynamic == 1);
    auto db = MetricDatabase::Open(dataset,
                                   std::make_shared<EuclideanMetric>(),
                                   options);
    ASSERT_TRUE(db.ok());
    for (ObjectId id : {1u, 50u, 300u}) {
      auto got = (*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(id, 8));
      ASSERT_TRUE(got.ok());
      results[dynamic].push_back(std::move(got).value());
    }
  }
  for (size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_TRUE(SameAnswers(results[0][i], results[1][i])) << i;
  }
}

}  // namespace
}  // namespace msq
