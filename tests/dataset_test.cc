// Tests for the dataset container, persistence, and the workload
// generators (including the two paper-surrogate distributions).

#include <cstdio>
#include <cmath>
#include <fstream>
#include <filesystem>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "dataset/dataset.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "dist/edit_distance.h"

namespace msq {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------
// Dataset container
// ---------------------------------------------------------------------

TEST(DatasetTest, AppendFixesDimensionality) {
  Dataset ds;
  ASSERT_TRUE(ds.Append({1, 2, 3}).ok());
  EXPECT_EQ(ds.dim(), 3u);
  EXPECT_TRUE(ds.Append({1, 2}).status().IsInvalidArgument());
}

TEST(DatasetTest, LabelsBackfillWhenFirstLabelArrivesLate) {
  Dataset ds;
  ASSERT_TRUE(ds.Append({1.0f}).ok());
  ASSERT_TRUE(ds.Append({2.0f}, 7).ok());
  EXPECT_TRUE(ds.has_labels());
  EXPECT_EQ(ds.label(0), kNoLabel);
  EXPECT_EQ(ds.label(1), 7);
}

TEST(DatasetTest, SubsetPreservesVectorsAndLabels) {
  Dataset ds;
  ASSERT_TRUE(ds.Append({1.0f}, 0).ok());
  ASSERT_TRUE(ds.Append({2.0f}, 1).ok());
  ASSERT_TRUE(ds.Append({3.0f}, 2).ok());
  const Dataset sub = ds.Subset({2, 0});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.object(0)[0], 3.0f);
  EXPECT_EQ(sub.label(0), 2);
  EXPECT_EQ(sub.object(1)[0], 1.0f);
  EXPECT_EQ(sub.label(1), 0);
}

TEST(DatasetTest, BoundsCoverAllObjects) {
  Dataset ds = MakeUniformDataset(500, 4, 3);
  Vec mins, maxs;
  ds.Bounds(&mins, &maxs);
  for (ObjectId id = 0; id < ds.size(); ++id) {
    for (size_t d = 0; d < 4; ++d) {
      EXPECT_GE(ds.object(id)[d], mins[d]);
      EXPECT_LE(ds.object(id)[d], maxs[d]);
    }
  }
}

TEST(DatasetTest, BinaryRoundTrip) {
  Dataset ds = MakeGaussianClustersDataset(200, 6, 4, 0.05, 5);
  const std::string path = TempPath("msq_ds_roundtrip.bin");
  ASSERT_TRUE(ds.SaveBinary(path).ok());
  auto loaded = Dataset::LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), ds.size());
  EXPECT_EQ(loaded->dim(), ds.dim());
  EXPECT_EQ(loaded->objects(), ds.objects());
  EXPECT_EQ(loaded->labels(), ds.labels());
  std::remove(path.c_str());
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset ds;
  ASSERT_TRUE(ds.Append({1.5f, 2.5f}, 3).ok());
  ASSERT_TRUE(ds.Append({0.25f, -4.0f}, 1).ok());
  const std::string path = TempPath("msq_ds_roundtrip.csv");
  ASSERT_TRUE(ds.SaveCsv(path).ok());
  auto loaded = Dataset::LoadCsv(path, /*has_label=*/true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 2u);
  EXPECT_FLOAT_EQ(loaded->object(1)[1], -4.0f);
  EXPECT_EQ(loaded->label(0), 3);
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadBinaryRejectsGarbage) {
  const std::string path = TempPath("msq_ds_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a dataset";
  }
  EXPECT_TRUE(Dataset::LoadBinary(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadMissingFileIsIOError) {
  EXPECT_TRUE(Dataset::LoadBinary("/nonexistent/nowhere.bin")
                  .status()
                  .IsIOError());
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

TEST(GeneratorsTest, UniformShapeAndRange) {
  Dataset ds = MakeUniformDataset(1000, 8, 1);
  EXPECT_EQ(ds.size(), 1000u);
  EXPECT_EQ(ds.dim(), 8u);
  for (ObjectId id = 0; id < ds.size(); ++id) {
    for (Scalar x : ds.object(id)) {
      EXPECT_GE(x, 0.0f);
      EXPECT_LT(x, 1.0f);
    }
  }
}

TEST(GeneratorsTest, DeterministicForSameSeed) {
  Dataset a = MakeUniformDataset(100, 4, 9);
  Dataset b = MakeUniformDataset(100, 4, 9);
  EXPECT_EQ(a.objects(), b.objects());
}

TEST(GeneratorsTest, GaussianClustersAreLabeled) {
  Dataset ds = MakeGaussianClustersDataset(500, 4, 5, 0.02, 2);
  ASSERT_TRUE(ds.has_labels());
  std::set<int32_t> labels(ds.labels().begin(), ds.labels().end());
  EXPECT_EQ(labels.size(), 5u);
  // Objects of the same cluster are closer to their own centroid than to
  // a random other object's position on average — proxy: intra-cluster
  // spread is small.
  EuclideanMetric metric;
  Vec centroid(4, 0.0f);
  size_t count = 0;
  for (ObjectId id = 0; id < ds.size(); ++id) {
    if (ds.label(id) != 0) continue;
    for (size_t d = 0; d < 4; ++d) centroid[d] += ds.object(id)[d];
    ++count;
  }
  ASSERT_GT(count, 0u);
  for (auto& x : centroid) x /= static_cast<Scalar>(count);
  for (ObjectId id = 0; id < ds.size(); ++id) {
    if (ds.label(id) != 0) continue;
    EXPECT_LT(metric.Distance(ds.object(id), centroid), 0.5);
  }
}

TEST(GeneratorsTest, TychoLikeHasRequestedShapeAndClasses) {
  TychoLikeOptions options;
  options.n = 2000;
  Dataset ds = MakeTychoLikeDataset(options);
  EXPECT_EQ(ds.size(), 2000u);
  EXPECT_EQ(ds.dim(), 20u);
  ASSERT_TRUE(ds.has_labels());
  std::set<int32_t> labels(ds.labels().begin(), ds.labels().end());
  EXPECT_LE(labels.size(), options.num_classes);
  EXPECT_GE(labels.size(), 2u);
}

TEST(GeneratorsTest, TychoLikeHasLowIntrinsicDimension) {
  // The surrogate embeds a 6-d latent space into 20-d: feature variance
  // must concentrate (some pairs strongly correlated). Cheap proxy: total
  // variance of the data is far below 20 * per-dim-variance of an
  // uncorrelated uniform embedding with the same marginal spread.
  TychoLikeOptions options;
  options.n = 3000;
  Dataset ds = MakeTychoLikeDataset(options);
  // Compute per-dim variance and the variance explained by the first
  // principal direction approximated by the dominant covariance row sum.
  const size_t dim = ds.dim();
  std::vector<double> mean(dim, 0.0);
  for (ObjectId id = 0; id < ds.size(); ++id) {
    for (size_t d = 0; d < dim; ++d) mean[d] += ds.object(id)[d];
  }
  for (auto& m : mean) m /= static_cast<double>(ds.size());
  // Cross-dimension correlation must exist: find at least one pair with
  // |corr| > 0.5.
  double best_corr = 0.0;
  for (size_t a = 0; a < dim; ++a) {
    for (size_t b = a + 1; b < dim; ++b) {
      double cov = 0, va = 0, vb = 0;
      for (ObjectId id = 0; id < ds.size(); ++id) {
        const double xa = ds.object(id)[a] - mean[a];
        const double xb = ds.object(id)[b] - mean[b];
        cov += xa * xb;
        va += xa * xa;
        vb += xb * xb;
      }
      if (va > 0 && vb > 0) {
        best_corr = std::max(best_corr, std::abs(cov / std::sqrt(va * vb)));
      }
    }
  }
  EXPECT_GT(best_corr, 0.5);
}

TEST(GeneratorsTest, ImageHistogramsAreNormalizedAndClustered) {
  ImageHistogramOptions options;
  options.n = 1000;
  options.num_clusters = 10;
  Dataset ds = MakeImageHistogramDataset(options);
  EXPECT_EQ(ds.dim(), 64u);
  ASSERT_TRUE(ds.has_labels());
  for (ObjectId id = 0; id < ds.size(); ++id) {
    double sum = 0.0;
    for (Scalar x : ds.object(id)) {
      EXPECT_GE(x, 0.0f);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
  // Clustered: same-label objects are on average much closer than
  // different-label objects.
  EuclideanMetric metric;
  double intra = 0, inter = 0;
  size_t n_intra = 0, n_inter = 0;
  for (ObjectId a = 0; a < 200; ++a) {
    for (ObjectId b = a + 1; b < 200; ++b) {
      const double d = metric.Distance(ds.object(a), ds.object(b));
      if (ds.label(a) == ds.label(b)) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0u);
  ASSERT_GT(n_inter, 0u);
  EXPECT_LT(intra / n_intra, 0.5 * inter / n_inter);
}

TEST(GeneratorsTest, SessionDatasetDecodesToBoundedSequences) {
  Dataset ds = MakeSessionDataset(300, 5, 50, 12, 23);
  EXPECT_EQ(ds.size(), 300u);
  ASSERT_TRUE(ds.has_labels());
  for (ObjectId id = 0; id < ds.size(); ++id) {
    const std::vector<int> seq = DecodeSequence(ds.object(id));
    EXPECT_LE(seq.size(), 12u);
    for (int s : seq) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 50);
    }
  }
}

TEST(GeneratorsTest, SessionsOfSameProfileAreCloserInEditDistance) {
  Dataset ds = MakeSessionDataset(200, 4, 40, 12, 29);
  EditDistanceMetric metric;
  double intra = 0, inter = 0;
  size_t n_intra = 0, n_inter = 0;
  for (ObjectId a = 0; a < 100; ++a) {
    for (ObjectId b = a + 1; b < 100; ++b) {
      const double d = metric.Distance(ds.object(a), ds.object(b));
      if (ds.label(a) == ds.label(b)) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0u);
  ASSERT_GT(n_inter, 0u);
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

}  // namespace
}  // namespace msq
