// Tests of the discrete metrics (Hamming, Jaccard) and their integration
// with the general-metric machinery (M-tree + multiple queries).

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "dist/discrete_metrics.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

TEST(HammingTest, KnownValues) {
  HammingMetric m;
  EXPECT_DOUBLE_EQ(m.Distance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance({1, 2, 3}, {1, 0, 3}), 1.0);
  EXPECT_DOUBLE_EQ(m.Distance({1, 2, 3}, {4, 5, 6}), 3.0);
}

TEST(HammingTest, MetricAxiomsOnRandomCodes) {
  HammingMetric m;
  Rng rng(71);
  auto random_code = [&]() {
    Vec v(12);
    for (auto& x : v) x = static_cast<Scalar>(rng.NextIndex(4));
    return v;
  };
  for (int i = 0; i < 300; ++i) {
    const Vec a = random_code(), b = random_code(), c = random_code();
    EXPECT_DOUBLE_EQ(m.Distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(m.Distance(a, b), m.Distance(b, a));
    EXPECT_LE(m.Distance(a, c), m.Distance(a, b) + m.Distance(b, c));
    if (a != b) EXPECT_GT(m.Distance(a, b), 0.0);
  }
}

TEST(JaccardTest, KnownValues) {
  JaccardMetric m;
  const Vec a = EncodeSet({0, 1, 2}, 8);
  const Vec b = EncodeSet({1, 2, 3}, 8);
  // |inter| = 2, |union| = 4.
  EXPECT_DOUBLE_EQ(m.Distance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(m.Distance(a, a), 0.0);
  const Vec empty = EncodeSet({}, 8);
  EXPECT_DOUBLE_EQ(m.Distance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance(a, empty), 1.0);
}

TEST(JaccardTest, MetricAxiomsOnRandomSets) {
  JaccardMetric m;
  Rng rng(73);
  auto random_set = [&]() {
    std::vector<int> elements;
    for (int e = 0; e < 16; ++e) {
      if (rng.NextDouble() < 0.4) elements.push_back(e);
    }
    return EncodeSet(elements, 16);
  };
  for (int i = 0; i < 500; ++i) {
    const Vec a = random_set(), b = random_set(), c = random_set();
    EXPECT_DOUBLE_EQ(m.Distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(m.Distance(a, b), m.Distance(b, a));
    EXPECT_LE(m.Distance(a, c),
              m.Distance(a, b) + m.Distance(b, c) + 1e-12);
  }
}

TEST(JaccardTest, EncodeSetIgnoresOutOfRange) {
  const Vec v = EncodeSet({-3, 2, 99}, 4);
  EXPECT_EQ(v, (Vec{0, 0, 1, 0}));
}

TEST(DiscreteMetricsTest, MultipleQueriesOnMTreeWithJaccard) {
  // Market-basket-like sets: the full stack (M-tree + multiple queries +
  // avoidance) must return brute-force answers for a discrete metric.
  Rng rng(77);
  Dataset dataset;
  for (int i = 0; i < 400; ++i) {
    std::vector<int> elements;
    const int base = static_cast<int>(rng.NextIndex(4)) * 8;
    for (int e = 0; e < 32; ++e) {
      const double p = (e >= base && e < base + 8) ? 0.7 : 0.05;
      if (rng.NextDouble() < p) elements.push_back(e);
    }
    ASSERT_TRUE(dataset.Append(EncodeSet(elements, 32)).ok());
  }
  auto metric = std::make_shared<JaccardMetric>();
  DatabaseOptions options;
  options.backend = BackendKind::kMTree;
  options.page_size_bytes = 1024;
  auto db = MetricDatabase::Open(dataset, metric, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::vector<Query> batch;
  for (ObjectId id : {1u, 44u, 180u, 333u}) {
    batch.push_back((*db)->MakeObjectKnnQuery(id, 6));
  }
  auto all = (*db)->MultipleSimilarityQueryAll(batch);
  ASSERT_TRUE(all.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*all)[i],
                            BruteForceQuery(dataset, *metric, batch[i])));
  }
}

TEST(DiscreteMetricsTest, HammingOnScanWithRangeQueries) {
  Rng rng(79);
  Dataset dataset;
  for (int i = 0; i < 300; ++i) {
    Vec v(10);
    for (auto& x : v) x = static_cast<Scalar>(rng.NextIndex(3));
    ASSERT_TRUE(dataset.Append(std::move(v)).ok());
  }
  auto metric = std::make_shared<HammingMetric>();
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  auto db = MetricDatabase::Open(dataset, metric, options);
  ASSERT_TRUE(db.ok());
  const Query q = (*db)->MakeObjectRangeQuery(5, 3.0);
  auto got = (*db)->SimilarityQuery(q);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SameAnswers(*got, BruteForceQuery(dataset, *metric, q)));
  EXPECT_FALSE(got->empty());
}

}  // namespace
}  // namespace msq
