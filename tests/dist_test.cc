// Tests for the distance-function module: metric axioms (property-checked
// on random samples for every shipped metric), MINDIST lower bounds,
// quadratic forms, edit distance, and the counting wrapper.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dist/builtin_metrics.h"
#include "dist/counting_metric.h"
#include "dist/edit_distance.h"
#include "dist/metric.h"

namespace msq {
namespace {

Vec RandomVec(Rng* rng, size_t dim) {
  Vec v(dim);
  for (auto& x : v) x = static_cast<Scalar>(rng->NextDouble(-1.0, 1.0));
  return v;
}

// ---------------------------------------------------------------------
// Metric axioms, property-checked per metric (TEST_P)
// ---------------------------------------------------------------------

std::shared_ptr<const Metric> MakeNamedMetric(const std::string& name) {
  if (name == "minkowski_p3") {
    auto made = MinkowskiMetric::Make(3.0);
    return std::make_shared<MinkowskiMetric>(std::move(made).value());
  }
  if (name == "weighted_euclidean") {
    auto made = WeightedEuclideanMetric::Make(
        std::vector<double>{1.0, 2.0, 0.5, 3.0, 1.5, 1.0, 2.5, 0.25});
    return std::make_shared<WeightedEuclideanMetric>(std::move(made).value());
  }
  if (name == "quadratic_form") {
    return std::make_shared<QuadraticFormMetric>(
        QuadraticFormMetric::HistogramSimilarity(8));
  }
  auto made = MakeMetric(name);
  return std::move(made).value();
}

class MetricAxiomsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MetricAxiomsTest, IdentityOfIndiscernibles) {
  auto metric = MakeNamedMetric(GetParam());
  // Angular distance goes through acos near 1.0, where float cancellation
  // costs ~1e-4 of absolute precision; all other metrics are exact.
  const double tol = GetParam() == "angular" ? 2e-3 : 1e-9;
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const Vec v = RandomVec(&rng, 8);
    EXPECT_NEAR(metric->Distance(v, v), 0.0, tol);
  }
}

TEST_P(MetricAxiomsTest, NonNegativityAndPositivity) {
  auto metric = MakeNamedMetric(GetParam());
  Rng rng(33);
  for (int i = 0; i < 200; ++i) {
    const Vec a = RandomVec(&rng, 8);
    const Vec b = RandomVec(&rng, 8);
    const double d = metric->Distance(a, b);
    EXPECT_GE(d, 0.0);
    if (a != b) EXPECT_GT(d, 0.0);
  }
}

TEST_P(MetricAxiomsTest, Symmetry) {
  auto metric = MakeNamedMetric(GetParam());
  Rng rng(35);
  for (int i = 0; i < 200; ++i) {
    const Vec a = RandomVec(&rng, 8);
    const Vec b = RandomVec(&rng, 8);
    EXPECT_NEAR(metric->Distance(a, b), metric->Distance(b, a), 1e-9);
  }
}

TEST_P(MetricAxiomsTest, TriangleInequality) {
  auto metric = MakeNamedMetric(GetParam());
  Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    const Vec a = RandomVec(&rng, 8);
    const Vec b = RandomVec(&rng, 8);
    const Vec c = RandomVec(&rng, 8);
    EXPECT_LE(metric->Distance(a, c),
              metric->Distance(a, b) + metric->Distance(b, c) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values("euclidean", "manhattan",
                                           "chebyshev", "angular",
                                           "minkowski_p3",
                                           "weighted_euclidean",
                                           "quadratic_form"));

// ---------------------------------------------------------------------
// Specific metric values
// ---------------------------------------------------------------------

TEST(EuclideanTest, KnownValues) {
  EuclideanMetric m;
  EXPECT_DOUBLE_EQ(m.Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(m.Distance({1, 1, 1}, {1, 1, 1}), 0.0);
}

TEST(ManhattanTest, KnownValues) {
  ManhattanMetric m;
  EXPECT_DOUBLE_EQ(m.Distance({0, 0}, {3, 4}), 7.0);
}

TEST(ChebyshevTest, KnownValues) {
  ChebyshevMetric m;
  EXPECT_DOUBLE_EQ(m.Distance({0, 0}, {3, 4}), 4.0);
}

TEST(MinkowskiTest, P2MatchesEuclidean) {
  auto made = MinkowskiMetric::Make(2.0);
  ASSERT_TRUE(made.ok());
  EuclideanMetric euclid;
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    const Vec a = RandomVec(&rng, 6);
    const Vec b = RandomVec(&rng, 6);
    EXPECT_NEAR(made->Distance(a, b), euclid.Distance(a, b), 1e-9);
  }
}

TEST(MinkowskiTest, RejectsPBelowOne) {
  EXPECT_TRUE(MinkowskiMetric::Make(0.5).status().IsInvalidArgument());
}

TEST(WeightedEuclideanTest, UnitWeightsMatchEuclidean) {
  auto made = WeightedEuclideanMetric::Make({1, 1, 1, 1});
  ASSERT_TRUE(made.ok());
  EuclideanMetric euclid;
  const Vec a{1, 2, 3, 4}, b{4, 3, 2, 1};
  EXPECT_NEAR(made->Distance(a, b), euclid.Distance(a, b), 1e-12);
}

TEST(WeightedEuclideanTest, RejectsNonPositiveWeights) {
  EXPECT_TRUE(WeightedEuclideanMetric::Make({1.0, 0.0})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(WeightedEuclideanMetric::Make({}).status().IsInvalidArgument());
}

TEST(QuadraticFormTest, IdentityMatrixMatchesEuclidean) {
  std::vector<double> identity(16, 0.0);
  for (int i = 0; i < 4; ++i) identity[i * 4 + i] = 1.0;
  auto made = QuadraticFormMetric::Make(4, identity);
  ASSERT_TRUE(made.ok());
  EuclideanMetric euclid;
  const Vec a{1, 0, 2, 3}, b{0, 1, 1, 5};
  EXPECT_NEAR(made->Distance(a, b), euclid.Distance(a, b), 1e-9);
}

TEST(QuadraticFormTest, RejectsAsymmetricMatrix) {
  std::vector<double> m{1.0, 0.5, 0.2, 1.0};
  EXPECT_TRUE(QuadraticFormMetric::Make(2, m).status().IsInvalidArgument());
}

TEST(QuadraticFormTest, RejectsNonPositiveDefinite) {
  std::vector<double> m{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_TRUE(QuadraticFormMetric::Make(2, m).status().IsInvalidArgument());
}

TEST(QuadraticFormTest, RejectsWrongSize) {
  EXPECT_TRUE(QuadraticFormMetric::Make(3, {1.0}).status().IsInvalidArgument());
}

TEST(QuadraticFormTest, CrossBinSimilaritySoftensDistance) {
  // Shifting mass to an adjacent bin must cost less than to a distant bin.
  auto metric = QuadraticFormMetric::HistogramSimilarity(8);
  Vec base(8, 0.0f);
  base[0] = 1.0f;
  Vec adjacent(8, 0.0f);
  adjacent[1] = 1.0f;
  Vec distant(8, 0.0f);
  distant[7] = 1.0f;
  EXPECT_LT(metric.Distance(base, adjacent), metric.Distance(base, distant));
}

TEST(AngularTest, OrthogonalVectorsAreHalfPi) {
  AngularMetric m;
  EXPECT_NEAR(m.Distance({1, 0}, {0, 1}), M_PI / 2, 1e-9);
  EXPECT_NEAR(m.Distance({1, 0}, {-1, 0}), M_PI, 1e-9);
  EXPECT_NEAR(m.Distance({1, 0}, {2, 0}), 0.0, 1e-6);
}

TEST(MakeMetricTest, KnownNamesResolve) {
  for (const char* name : {"euclidean", "manhattan", "chebyshev", "angular"}) {
    auto made = MakeMetric(name);
    ASSERT_TRUE(made.ok()) << name;
    EXPECT_EQ((*made)->Name(), name);
  }
}

TEST(MakeMetricTest, UnknownNameFails) {
  EXPECT_TRUE(MakeMetric("hamming").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// MINDIST lower bounds
// ---------------------------------------------------------------------

class BoxMinDistTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BoxMinDistTest, LowerBoundsDistanceToAnyBoxPoint) {
  auto metric = MakeNamedMetric(GetParam());
  const auto* box = dynamic_cast<const BoxDistanceMetric*>(metric.get());
  ASSERT_NE(box, nullptr);
  Rng rng(43);
  for (int trial = 0; trial < 300; ++trial) {
    Vec lo = RandomVec(&rng, 6), hi = lo;
    for (size_t d = 0; d < 6; ++d) {
      hi[d] = lo[d] + static_cast<Scalar>(rng.NextDouble(0.0, 0.5));
    }
    const Vec q = RandomVec(&rng, 6);
    // Random point inside the box.
    Vec p(6);
    for (size_t d = 0; d < 6; ++d) {
      p[d] = static_cast<Scalar>(rng.NextDouble(lo[d], hi[d]));
    }
    EXPECT_LE(box->MinDistToBox(q, lo, hi), metric->Distance(q, p) + 1e-9);
  }
}

TEST_P(BoxMinDistTest, ZeroInsideBox) {
  auto metric = MakeNamedMetric(GetParam());
  const auto* box = dynamic_cast<const BoxDistanceMetric*>(metric.get());
  ASSERT_NE(box, nullptr);
  const Vec lo{0, 0, 0, 0, 0, 0}, hi{1, 1, 1, 1, 1, 1};
  const Vec q{0.5, 0.2, 0.9, 0.1, 0.7, 0.3};
  EXPECT_DOUBLE_EQ(box->MinDistToBox(q, lo, hi), 0.0);
}

INSTANTIATE_TEST_SUITE_P(LpMetrics, BoxMinDistTest,
                         ::testing::Values("euclidean", "manhattan",
                                           "chebyshev", "minkowski_p3"));

TEST(BoxMinDistTest, WeightedEuclideanLowerBound) {
  auto made = WeightedEuclideanMetric::Make({1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(made.ok());
  Rng rng(45);
  for (int trial = 0; trial < 200; ++trial) {
    Vec lo = RandomVec(&rng, 6), hi = lo;
    for (size_t d = 0; d < 6; ++d) {
      hi[d] = lo[d] + static_cast<Scalar>(rng.NextDouble(0.0, 0.5));
    }
    const Vec q = RandomVec(&rng, 6);
    Vec p(6);
    for (size_t d = 0; d < 6; ++d) {
      p[d] = static_cast<Scalar>(rng.NextDouble(lo[d], hi[d]));
    }
    EXPECT_LE(made->MinDistToBox(q, lo, hi), made->Distance(q, p) + 1e-9);
  }
}

// ---------------------------------------------------------------------
// Edit distance on encoded sequences
// ---------------------------------------------------------------------

TEST(EditDistanceTest, EncodingRoundTrips) {
  const std::vector<int> symbols{3, 1, 4, 1, 5};
  const Vec encoded = EncodeSequence(symbols, 10);
  EXPECT_EQ(DecodeSequence(encoded), symbols);
}

TEST(EditDistanceTest, EncodingTruncatesAtCapacity) {
  const std::vector<int> symbols{1, 2, 3, 4, 5};
  const Vec encoded = EncodeSequence(symbols, 3);
  EXPECT_EQ(DecodeSequence(encoded), (std::vector<int>{1, 2, 3}));
}

TEST(EditDistanceTest, KnownValues) {
  EditDistanceMetric m;
  EXPECT_DOUBLE_EQ(m.Distance(EncodeString("kitten", 16),
                              EncodeString("sitting", 16)),
                   3.0);
  EXPECT_DOUBLE_EQ(m.Distance(EncodeString("", 16), EncodeString("abc", 16)),
                   3.0);
  EXPECT_DOUBLE_EQ(m.Distance(EncodeString("abc", 16),
                              EncodeString("abc", 16)),
                   0.0);
}

TEST(EditDistanceTest, MetricAxiomsOnRandomSequences) {
  EditDistanceMetric m;
  Rng rng(47);
  auto random_seq = [&]() {
    std::vector<int> s(1 + rng.NextIndex(10));
    for (auto& x : s) x = static_cast<int>(rng.NextIndex(4));
    return EncodeSequence(s, 16);
  };
  for (int i = 0; i < 300; ++i) {
    const Vec a = random_seq(), b = random_seq(), c = random_seq();
    EXPECT_DOUBLE_EQ(m.Distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(m.Distance(a, b), m.Distance(b, a));
    EXPECT_LE(m.Distance(a, c), m.Distance(a, b) + m.Distance(b, c));
  }
}

// ---------------------------------------------------------------------
// CountingMetric
// ---------------------------------------------------------------------

TEST(CountingMetricTest, ChargesObjectAndMatrixBucketsSeparately) {
  auto base = std::make_shared<EuclideanMetric>();
  CountingMetric counting(base);
  QueryStats stats;
  counting.set_stats(&stats);
  const Vec a{1, 2}, b{3, 4};
  counting.Distance(a, b);
  counting.Distance(a, b);
  counting.DistanceForMatrix(a, b);
  EXPECT_EQ(stats.dist_computations, 2u);
  EXPECT_EQ(stats.matrix_dist_computations, 1u);
}

TEST(CountingMetricTest, UncountedPathChargesNothing) {
  auto base = std::make_shared<EuclideanMetric>();
  CountingMetric counting(base);
  QueryStats stats;
  counting.set_stats(&stats);
  counting.DistanceUncounted({0, 0}, {1, 1});
  EXPECT_EQ(stats.dist_computations, 0u);
}

TEST(CountingMetricTest, NullSinkIsSafe) {
  auto base = std::make_shared<EuclideanMetric>();
  CountingMetric counting(base);
  counting.set_stats(nullptr);
  EXPECT_NEAR(counting.Distance({0, 0}, {3, 4}), 5.0, 1e-12);
}

TEST(CountingMetricTest, ValueMatchesBaseMetric) {
  auto base = std::make_shared<ManhattanMetric>();
  CountingMetric counting(base);
  QueryStats stats;
  counting.set_stats(&stats);
  EXPECT_DOUBLE_EQ(counting.Distance({0, 0}, {3, 4}), 7.0);
}

}  // namespace
}  // namespace msq
