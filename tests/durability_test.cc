// Tests for the crash-consistent durability layer (DESIGN §14): the WAL's
// frame format (round trip, torn-tail truncation, stale-nonce discard),
// fsyncgate poisoning on both Wal and PageFile, atomic Save (a crash at
// any write offset of an overwrite leaves the old file or the new one,
// never a corrupt one), WAL recovery with exact counter accounting, the
// auto-checkpoint thresholds, and the acceptance criterion itself: a
// kill-at-every-write-offset matrix across all four backends, pivots off
// and on, over three phases (save overwrite, WAL appends, checkpoint) —
// every reopened database must answer bit-identically to a valid quiesced
// prefix of the mutation history, and no crash point may surface as
// Corruption.
//
// Suite names all start with "Durability" — the TSan CI filter and the
// durability-smoke job select on that prefix.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "obs/metrics.h"
#include "robust/fault_injector.h"
#include "storage/fs_util.h"
#include "storage/page_file.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

constexpr BackendKind kAllBackends[] = {
    BackendKind::kLinearScan, BackendKind::kXTree, BackendKind::kMTree,
    BackendKind::kVaFile};

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void RemoveDbFiles(const std::string& path) {
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".wal");
  std::filesystem::remove(path + ".tmp");
}

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global()->GetCounter(name)->Value();
}

// --- Wal frame format ----------------------------------------------------

TEST(DurabilityWalTest, RecordsRoundTripThroughScan) {
  const std::string path = TempPath("durab_wal_roundtrip.wal");
  std::filesystem::remove(path);
  WalReplayResult replay;
  auto wal = Wal::OpenForAppend(path, /*checkpoint_nonce=*/42, Wal::Options{},
                                &replay);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(replay.records.size(), 0u);
  ASSERT_TRUE((*wal)->Append(WalRecord::Insert({1.0f, 2.0f, 3.0f}, 7)).ok());
  ASSERT_TRUE((*wal)->Append(WalRecord::Delete(19)).ok());
  ASSERT_TRUE(
      (*wal)->AppendBatch({WalRecord::Insert({4.0f, 5.0f, 6.0f}, kNoLabel),
                           WalRecord::Delete(3)})
          .ok());
  EXPECT_EQ((*wal)->records_appended(), 4u);
  ASSERT_TRUE((*wal)->Close().ok());

  WalReplayResult scanned;
  ASSERT_TRUE(Wal::Scan(path, /*expected_nonce=*/42, &scanned).ok());
  ASSERT_EQ(scanned.records.size(), 4u);
  EXPECT_FALSE(scanned.tail_truncated);
  EXPECT_FALSE(scanned.stale_discarded);
  EXPECT_EQ(scanned.header_nonce, 42u);
  EXPECT_EQ(scanned.records[0].type, WalRecord::Type::kInsert);
  EXPECT_EQ(scanned.records[0].point, (Vec{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(scanned.records[0].label, 7);
  EXPECT_EQ(scanned.records[1].type, WalRecord::Type::kDelete);
  EXPECT_EQ(scanned.records[1].id, 19u);
  EXPECT_EQ(scanned.records[2].label, kNoLabel);
  EXPECT_EQ(scanned.records[3].id, 3u);
  std::filesystem::remove(path);
}

TEST(DurabilityWalTest, TornTailIsTruncatedAtFirstBadFrame) {
  const std::string path = TempPath("durab_wal_torn.wal");
  std::filesystem::remove(path);
  WalReplayResult replay;
  {
    auto wal = Wal::OpenForAppend(path, 5, Wal::Options{}, &replay);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)
                      ->Append(WalRecord::Insert({float(i), float(i)}, i))
                      .ok());
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  const uint64_t intact = std::filesystem::file_size(path);
  // A torn final append: garbage bytes that parse as neither a plausible
  // length nor a valid CRC.
  {
    std::ofstream tail(path, std::ios::binary | std::ios::app);
    tail.write("\xde\xad\xbe\xef\xde\xad", 6);
  }
  WalReplayResult scanned;
  ASSERT_TRUE(Wal::Scan(path, 5, &scanned).ok());
  EXPECT_EQ(scanned.records.size(), 3u);
  EXPECT_TRUE(scanned.tail_truncated);
  EXPECT_EQ(scanned.valid_bytes, intact);

  // OpenForAppend truncates the file back to the valid prefix and keeps
  // appending from there.
  auto wal = Wal::OpenForAppend(path, 5, Wal::Options{}, &replay);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(replay.records.size(), 3u);
  EXPECT_TRUE(replay.tail_truncated);
  EXPECT_EQ(std::filesystem::file_size(path), intact);
  ASSERT_TRUE((*wal)->Append(WalRecord::Delete(1)).ok());
  ASSERT_TRUE((*wal)->Close().ok());
  WalReplayResult again;
  ASSERT_TRUE(Wal::Scan(path, 5, &again).ok());
  EXPECT_EQ(again.records.size(), 4u);
  EXPECT_FALSE(again.tail_truncated);
  std::filesystem::remove(path);
}

TEST(DurabilityWalTest, StaleNonceLogIsDiscardedAndReset) {
  const std::string path = TempPath("durab_wal_stale.wal");
  std::filesystem::remove(path);
  WalReplayResult replay;
  {
    auto wal = Wal::OpenForAppend(path, /*checkpoint_nonce=*/111,
                                  Wal::Options{}, &replay);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecord::Delete(4)).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  // The checkpoint moved on (nonce 222) but the crash landed before the
  // WAL swap: the log on disk predates the checkpoint.
  WalReplayResult scanned;
  ASSERT_TRUE(Wal::Scan(path, 222, &scanned).ok());
  EXPECT_TRUE(scanned.stale_discarded);
  EXPECT_EQ(scanned.records.size(), 0u);

  auto wal = Wal::OpenForAppend(path, 222, Wal::Options{}, &replay);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(replay.stale_discarded);
  EXPECT_EQ(replay.records.size(), 0u);
  ASSERT_TRUE((*wal)->Close().ok());
  // The reset log now carries the new nonce.
  WalReplayResult fresh;
  ASSERT_TRUE(Wal::Scan(path, 222, &fresh).ok());
  EXPECT_FALSE(fresh.stale_discarded);
  EXPECT_EQ(fresh.header_nonce, 222u);
  std::filesystem::remove(path);
}

TEST(DurabilityWalTest, WriteOrFsyncFailurePoisonsTheLog) {
  const std::string path = TempPath("durab_wal_poison.wal");
  std::filesystem::remove(path);
  WalReplayResult replay;
  auto wal = Wal::OpenForAppend(path, 9, Wal::Options{}, &replay);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecord::Delete(1)).ok());
  // One injected fsync failure...
  int fail_budget = 1;
  (*wal)->SetFsyncFaultHook([&]() -> Status {
    if (fail_budget > 0) {
      --fail_budget;
      return Status::IOError("injected fsync failure");
    }
    return Status::OK();
  });
  Status first = (*wal)->Append(WalRecord::Delete(2));
  ASSERT_FALSE(first.ok());
  // ...poisons every later operation with the original error, even though
  // the hook would now succeed (fsyncgate: the failed range's fate is
  // unknown; a later "clean" fsync proves nothing).
  Status second = (*wal)->Append(WalRecord::Delete(3));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.ToString(), first.ToString());
  EXPECT_FALSE((*wal)->Sync().ok());
  EXPECT_FALSE((*wal)->Close().ok());
  std::filesystem::remove(path);
}

TEST(DurabilityWalTest, FsyncPolicyNamesRoundTrip) {
  for (WalFsyncPolicy p :
       {WalFsyncPolicy::kEveryRecord, WalFsyncPolicy::kEveryN,
        WalFsyncPolicy::kOnCheckpoint}) {
    auto back = WalFsyncPolicyFromName(WalFsyncPolicyName(p));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(WalFsyncPolicyFromName("bogus").ok());
}

// --- PageFile close/poison (the Close() satellite) ------------------------

TEST(DurabilityPageFileTest, CloseReturnsStatusAndIsIdempotent) {
  const std::string path = TempPath("durab_pf_close.msq");
  std::filesystem::remove(path);
  auto pf = PageFile::Create(path);
  ASSERT_TRUE(pf.ok());
  ASSERT_TRUE((*pf)->PutObject("blob", "payload").ok());
  ASSERT_TRUE((*pf)->Sync().ok());
  EXPECT_TRUE((*pf)->Close().ok());
  EXPECT_TRUE((*pf)->Close().ok());  // idempotent
  std::filesystem::remove(path);
}

TEST(DurabilityPageFileTest, FsyncFailurePoisonsTheFile) {
  const std::string path = TempPath("durab_pf_poison.msq");
  std::filesystem::remove(path);
  auto pf = PageFile::Create(path);
  ASSERT_TRUE(pf.ok());
  ASSERT_TRUE((*pf)->PutObject("blob", "payload").ok());
  (*pf)->SetFsyncFaultHook(
      []() { return Status::IOError("injected fsync failure"); });
  Status sync = (*pf)->Sync();
  ASSERT_FALSE(sync.ok());
  (*pf)->SetFsyncFaultHook(nullptr);
  // Sticky: later writes and the close itself report the original error.
  EXPECT_FALSE((*pf)->PutObject("more", "x").ok());
  Status close = (*pf)->Close();
  ASSERT_FALSE(close.ok());
  EXPECT_EQ(close.ToString(), sync.ToString());
  std::filesystem::remove(path);
}

// --- fs_util --------------------------------------------------------------

TEST(DurabilityFsUtilTest, DurableRenameReplacesAndFileExists) {
  const std::string from = TempPath("durab_fs_from.bin");
  const std::string to = TempPath("durab_fs_to.bin");
  { std::ofstream(from) << "new"; }
  { std::ofstream(to) << "old"; }
  EXPECT_TRUE(FileExists(from));
  ASSERT_TRUE(DurableRename(from, to).ok());
  EXPECT_FALSE(FileExists(from));
  std::ifstream in(to);
  std::string content;
  in >> content;
  EXPECT_EQ(content, "new");
  RemoveFileIfExists(to);
  EXPECT_FALSE(FileExists(to));
  EXPECT_FALSE(DurableRename(from, to).ok());  // source is gone
}

// --- database-level durability -------------------------------------------

std::unique_ptr<MetricDatabase> BuildDb(const Dataset& data,
                                        const DatabaseOptions& options) {
  auto db = MetricDatabase::Open(data, std::make_shared<EuclideanMetric>(),
                                 options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return db.ok() ? std::move(db).value() : nullptr;
}

DatabaseOptions WalOptions(std::shared_ptr<robust::FaultInjector> injector =
                               nullptr,
                           BackendKind kind = BackendKind::kLinearScan,
                           bool pivots = false) {
  DatabaseOptions options;
  options.backend = kind;
  options.pivots.enabled = pivots;
  options.pivots.table.num_pivots = 3;
  options.pivots.table.sample_size = 32;
  options.durability.wal_enabled = true;
  options.fault_injector = std::move(injector);
  return options;
}

/// One scripted mutation of the crash-matrix history.
struct Mutation {
  bool is_insert = true;
  Vec row;          // insert payload
  ObjectId id = 0;  // delete target
};

std::vector<Mutation> MakeMutations(const Dataset& adds) {
  std::vector<Mutation> muts;
  for (ObjectId i = 0; i < adds.size(); ++i) {
    muts.push_back({true, adds.object(i), 0});
  }
  muts.push_back({false, {}, 7});
  muts.push_back({false, {}, 33});
  return muts;
}

/// The object set after the first `prefix` mutations, in the id order
/// compaction produces (base survivors in base order, then inserts in
/// insertion order) — so a quiesced database of this history must answer
/// bit-identically to a fresh build of these rows.
Dataset ExpectedSet(const Dataset& base, const std::vector<Mutation>& muts,
                    size_t prefix) {
  std::vector<bool> dead(base.size(), false);
  std::vector<Vec> inserts;
  for (size_t i = 0; i < prefix; ++i) {
    if (muts[i].is_insert) {
      inserts.push_back(muts[i].row);
    } else {
      dead[muts[i].id] = true;
    }
  }
  std::vector<Vec> rows;
  for (ObjectId id = 0; id < base.size(); ++id) {
    if (!dead[id]) rows.push_back(base.object(id));
  }
  for (Vec& v : inserts) rows.push_back(std::move(v));
  return Dataset(base.dim(), std::move(rows));
}

/// Quiesces `db` and checks its answers are bit-identical (ids and
/// distances, zero tolerance) to a brute-force pass over `expected`.
::testing::AssertionResult MatchesExpected(MetricDatabase* db,
                                           const Dataset& expected,
                                           const Dataset& probes) {
  if (Status s = db->Compact(); !s.ok()) {
    return ::testing::AssertionFailure() << "compact: " << s.ToString();
  }
  if (db->NumLiveObjects() != expected.size()) {
    return ::testing::AssertionFailure()
           << "live " << db->NumLiveObjects() << " != expected "
           << expected.size();
  }
  EuclideanMetric metric;
  for (ObjectId i = 0; i < probes.size(); ++i) {
    const Query knn{static_cast<QueryId>(4000 + i), probes.object(i),
                    QueryType::Knn(5)};
    auto got = db->SimilarityQuery(knn);
    if (!got.ok()) {
      return ::testing::AssertionFailure()
             << "knn: " << got.status().ToString();
    }
    if (!SameAnswers(*got, BruteForceQuery(expected, metric, knn), 0.0)) {
      return ::testing::AssertionFailure() << "knn answers differ (probe "
                                           << i << ")";
    }
  }
  const Query range{4999, probes.object(0), QueryType::Range(0.6)};
  auto got = db->SimilarityQuery(range);
  if (!got.ok()) {
    return ::testing::AssertionFailure()
           << "range: " << got.status().ToString();
  }
  if (!SameAnswers(*got, BruteForceQuery(expected, metric, range), 0.0)) {
    return ::testing::AssertionFailure() << "range answers differ";
  }
  return ::testing::AssertionSuccess();
}

TEST(DurabilityRecoveryTest, WalReplayRestoresPreCrashStateExactly) {
  const Dataset base = MakeUniformDataset(100, 4, 31);
  const Dataset adds = MakeUniformDataset(6, 4, 32);
  const Dataset probes = MakeUniformDataset(4, 4, 33);
  const std::vector<Mutation> muts = MakeMutations(adds);
  const std::string path = TempPath("durab_recover.msq");
  RemoveDbFiles(path);

  {
    auto db = BuildDb(base, WalOptions());
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->Save(path).ok());
    EXPECT_TRUE(db->wal_attached());
    for (const Mutation& m : muts) {
      if (m.is_insert) {
        ASSERT_TRUE(db->Insert(m.row).ok());
      } else {
        ASSERT_TRUE(db->Delete(m.id).ok());
      }
    }
    EXPECT_GT(db->WalSizeBytes(), 0u);
    // The database is dropped without Checkpoint or Save — the process
    // "crashes". Everything that survives is the checkpoint + the WAL.
  }

  const uint64_t recoveries_before = CounterValue("msq_recoveries_total");
  const uint64_t replayed_before =
      CounterValue("msq_wal_replayed_records_total");
  auto reopened = MetricDatabase::Open(path, WalOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& recovery = (*reopened)->recovery();
  EXPECT_TRUE(recovery.recovered);
  EXPECT_EQ(recovery.replayed_records, muts.size());
  EXPECT_FALSE(recovery.wal_tail_truncated);
  EXPECT_FALSE(recovery.wal_stale_discarded);
  // The counters account for the replay exactly.
  EXPECT_EQ(CounterValue("msq_recoveries_total"), recoveries_before + 1);
  EXPECT_EQ(CounterValue("msq_wal_replayed_records_total"),
            replayed_before + muts.size());
  EXPECT_TRUE(MatchesExpected(reopened->get(),
                              ExpectedSet(base, muts, muts.size()), probes));
  RemoveDbFiles(path);
}

TEST(DurabilityRecoveryTest, CheckpointTruncatesWalAndSurvivesReopen) {
  const Dataset base = MakeUniformDataset(80, 4, 41);
  const Dataset probes = MakeUniformDataset(3, 4, 43);
  const std::string path = TempPath("durab_ckpt.msq");
  RemoveDbFiles(path);
  auto db = BuildDb(base, WalOptions());
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Save(path).ok());
  const uint64_t empty_wal = db->WalSizeBytes();  // header only

  ASSERT_TRUE(db->Insert(probes.object(0)).ok());
  ASSERT_TRUE(db->Delete(5).ok());
  EXPECT_GT(db->WalSizeBytes(), empty_wal);

  const uint64_t ckpts_before = CounterValue("msq_checkpoints_total");
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(CounterValue("msq_checkpoints_total"), ckpts_before + 1);
  EXPECT_EQ(db->WalSizeBytes(), empty_wal);
  EXPECT_EQ(db->NumDeltaObjects(), 0u);

  // Reopening after a clean checkpoint replays nothing.
  db.reset();
  auto reopened = MetricDatabase::Open(path, WalOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE((*reopened)->recovery().recovered);
  EXPECT_EQ((*reopened)->NumLiveObjects(), base.size());  // 80 - 1 + 1

  // A checkpoint with nothing mutated is a no-op.
  const uint64_t ckpts_clean = CounterValue("msq_checkpoints_total");
  ASSERT_TRUE((*reopened)->Checkpoint().ok());
  EXPECT_EQ(CounterValue("msq_checkpoints_total"), ckpts_clean);
  RemoveDbFiles(path);
}

TEST(DurabilityRecoveryTest, CompactBetweenLoggedMutationsRecoversExactly) {
  // Compact() renumbers survivors ("position among survivors"), so a
  // Delete logged after it references the post-compaction id space. On a
  // durability-armed database Compact must therefore be a full checkpoint
  // — otherwise crash recovery would replay that Delete against the
  // pre-compaction checkpoint and tombstone the wrong object.
  const Dataset base = MakeUniformDataset(100, 4, 111);
  const Dataset adds = MakeUniformDataset(2, 4, 112);
  const Dataset probes = MakeUniformDataset(4, 4, 113);
  const std::string path = TempPath("durab_compact_mid.msq");
  RemoveDbFiles(path);

  // Expected survivor set: base minus {7}, plus adds[0]. adds[1] sits at
  // post-compaction id 100 (99 base survivors, then the two inserts) and
  // is deleted after the compact.
  std::vector<Vec> rows;
  for (ObjectId id = 0; id < base.size(); ++id) {
    if (id != 7) rows.push_back(base.object(id));
  }
  rows.push_back(adds.object(0));
  const Dataset expected(base.dim(), std::move(rows));

  {
    auto db = BuildDb(base, WalOptions());
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->Save(path).ok());
    const uint64_t empty_wal = db->WalSizeBytes();  // header only
    ASSERT_TRUE(db->Insert(adds.object(0)).ok());  // id 100
    ASSERT_TRUE(db->Insert(adds.object(1)).ok());  // id 101
    ASSERT_TRUE(db->Delete(7).ok());
    const uint64_t ckpts = CounterValue("msq_checkpoints_total");
    ASSERT_TRUE(db->Compact().ok());
    // The WAL-attached compact checkpointed: the renumbered base is on
    // disk under a fresh nonce and the old log is retired.
    EXPECT_EQ(CounterValue("msq_checkpoints_total"), ckpts + 1);
    EXPECT_TRUE(db->wal_attached());
    EXPECT_EQ(db->WalSizeBytes(), empty_wal);
    ASSERT_TRUE(db->Delete(100).ok());  // adds[1], post-compaction id
    // The database is dropped without a clean shutdown — a crash.
  }
  auto reopened = MetricDatabase::Open(path, WalOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Only the post-compaction Delete is in the log; it must land on
  // adds[1], not on whatever object held id 100 before the compact.
  EXPECT_EQ((*reopened)->recovery().replayed_records, 1u);
  EXPECT_TRUE(MatchesExpected(reopened->get(), expected, probes));
  RemoveDbFiles(path);
}

TEST(DurabilityRecoveryTest, FailedCheckpointDetachesWalUntilHealed) {
  // A checkpoint whose save fails may already have landed its rename (new
  // nonce durable at the bound path) while the attached WAL still frames
  // the old nonce — appends would succeed yet be discarded as stale by
  // recovery. After any failed checkpoint save the log must be detached
  // (mutations fail Unavailable, never silently undurable) until a clean
  // Checkpoint() writes a fresh checkpoint and re-arms it.
  const Dataset base = MakeUniformDataset(60, 4, 121);
  const Dataset adds = MakeUniformDataset(3, 4, 122);
  const std::string path = TempPath("durab_ckpt_poison.msq");
  RemoveDbFiles(path);
  auto injector =
      std::make_shared<robust::FaultInjector>(robust::FaultPlan{});
  auto db = BuildDb(base, WalOptions(injector));
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Save(path).ok());
  ASSERT_TRUE(db->Insert(adds.object(0)).ok());

  injector->FailNextFsyncs(1);
  ASSERT_FALSE(db->Checkpoint().ok());
  EXPECT_FALSE(db->wal_attached());
  Status blocked = db->Insert(adds.object(1)).status();
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.IsUnavailable());
  EXPECT_TRUE(db->Delete(3).IsUnavailable());

  // A clean checkpoint heals: fresh checkpoint + empty re-armed log.
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_TRUE(db->wal_attached());
  ASSERT_TRUE(db->Insert(adds.object(1)).ok());
  db.reset();  // crash

  auto reopened = MetricDatabase::Open(path, WalOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // adds[0] was folded by the healing checkpoint; only adds[1] replays.
  EXPECT_EQ((*reopened)->recovery().replayed_records, 1u);
  EXPECT_EQ((*reopened)->NumLiveObjects(), base.size() + 2);
  RemoveDbFiles(path);
}

TEST(DurabilityRecoveryTest, CheckpointRequiresABoundPath) {
  auto db = BuildDb(MakeUniformDataset(20, 3, 1), DatabaseOptions());
  ASSERT_NE(db, nullptr);
  Status s = db->Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(DurabilityAutoCheckpointTest, WalByteThresholdFoldsEveryMutation) {
  const Dataset base = MakeUniformDataset(60, 4, 51);
  const Dataset adds = MakeUniformDataset(3, 4, 52);
  const std::string path = TempPath("durab_auto_bytes.msq");
  RemoveDbFiles(path);
  DatabaseOptions options = WalOptions();
  options.durability.auto_checkpoint_wal_bytes = 1;  // any record trips it
  auto db = BuildDb(base, options);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Save(path).ok());
  const uint64_t empty_wal = db->WalSizeBytes();
  const uint64_t ckpts_before = CounterValue("msq_checkpoints_total");
  for (ObjectId i = 0; i < adds.size(); ++i) {
    ASSERT_TRUE(db->Insert(adds.object(i)).ok());
    // Every mutation lands in the WAL and is immediately folded into a
    // fresh checkpoint: the log never accumulates, the delta stays empty.
    EXPECT_EQ(db->WalSizeBytes(), empty_wal);
    EXPECT_EQ(db->NumDeltaObjects(), 0u);
  }
  EXPECT_EQ(CounterValue("msq_checkpoints_total"),
            ckpts_before + adds.size());
  db.reset();
  auto reopened = MetricDatabase::Open(path, WalOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->recovery().recovered);
  EXPECT_EQ((*reopened)->NumLiveObjects(), base.size() + adds.size());
  RemoveDbFiles(path);
}

TEST(DurabilityAutoCheckpointTest, TombstoneRatioThresholdTriggers) {
  const Dataset base = MakeUniformDataset(20, 4, 61);
  const std::string path = TempPath("durab_auto_tombs.msq");
  RemoveDbFiles(path);
  DatabaseOptions options = WalOptions();
  options.durability.auto_checkpoint_tombstone_ratio = 0.25;
  auto db = BuildDb(base, options);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Save(path).ok());
  // Four deletes: 4/20 = 0.2, below the threshold — tombstones accumulate.
  for (ObjectId id = 0; id < 4; ++id) {
    ASSERT_TRUE(db->Delete(id).ok());
  }
  EXPECT_EQ(db->NumTombstones(), 4u);
  // The fifth crosses 0.25 and the checkpoint folds them all.
  ASSERT_TRUE(db->Delete(4).ok());
  EXPECT_EQ(db->NumTombstones(), 0u);
  EXPECT_EQ(db->NumLiveObjects(), base.size() - 5);
  RemoveDbFiles(path);
}

TEST(DurabilityAutoCheckpointTest, InsertReturnsPostFoldIdWhenFoldRenumbers) {
  // When the auto-checkpoint trips on an Insert while tombstones exist,
  // the fold renumbers survivors before Insert returns — the returned id
  // must be the post-fold one (valid at return time), not the stale
  // pre-fold position.
  const Dataset base = MakeUniformDataset(60, 4, 131);
  const Dataset adds = MakeUniformDataset(1, 4, 132);
  const std::string path = TempPath("durab_auto_id.msq");

  // Pass 1: measure the WAL size after one Delete, so pass 2 can arm a
  // byte threshold that only the *second* mutation (the Insert) trips.
  uint64_t delete_bytes = 0;
  {
    RemoveDbFiles(path);
    auto db = BuildDb(base, WalOptions());
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->Save(path).ok());
    ASSERT_TRUE(db->Delete(3).ok());
    delete_bytes = db->WalSizeBytes();
  }
  RemoveDbFiles(path);

  DatabaseOptions options = WalOptions();
  options.durability.auto_checkpoint_wal_bytes = delete_bytes + 1;
  auto db = BuildDb(base, options);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Save(path).ok());
  ASSERT_TRUE(db->Delete(3).ok());
  EXPECT_EQ(db->NumTombstones(), 1u);  // below the threshold: no fold yet
  auto id = db->Insert(adds.object(0));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // The insert tripped the fold: the tombstone is reclaimed and survivors
  // renumbered. The pre-fold id would have been 60; the post-fold one is
  // 59 (59 base survivors, then the insert) and must resolve to the
  // inserted row.
  EXPECT_EQ(db->NumTombstones(), 0u);
  EXPECT_EQ(*id, base.size() - 1);
  EXPECT_EQ(db->backend().ObjectVec(*id), adds.object(0));
  RemoveDbFiles(path);
}

// --- atomic save: crash at every write offset of an overwrite -------------

// The regression the atomic-Save satellite exists for: the old Save wrote
// in place, so a crash mid-write destroyed the only copy. Now a crash at
// *any* write op of an overwrite (temp-file writes, fsyncs aside, the
// rename itself) must leave `path` opening cleanly as either the old
// state or the new one — never Corruption, never NotFound.
TEST(DurabilityAtomicSaveTest, CrashAtEveryWriteOpLeavesOldOrNewState) {
  const Dataset base = MakeUniformDataset(100, 4, 71);
  const Dataset adds = MakeUniformDataset(6, 4, 72);
  const Dataset probes = MakeUniformDataset(3, 4, 73);
  const std::vector<Mutation> muts = MakeMutations(adds);
  const Dataset old_set = ExpectedSet(base, muts, 0);
  const Dataset new_set = ExpectedSet(base, muts, muts.size());

  auto injector =
      std::make_shared<robust::FaultInjector>(robust::FaultPlan{});
  DatabaseOptions options;  // durability off: pure atomic-save semantics
  options.fault_injector = injector;
  const std::string path = TempPath("durab_atomic_save.msq");
  const std::string scratch = TempPath("durab_atomic_scratch.msq");
  RemoveDbFiles(path);
  RemoveDbFiles(scratch);

  auto db = BuildDb(base, options);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Save(path).ok());
  for (const Mutation& m : muts) {
    if (m.is_insert) {
      ASSERT_TRUE(db->Insert(m.row).ok());
    } else {
      ASSERT_TRUE(db->Delete(m.id).ok());
    }
  }
  // Learn the overwrite's write-op count from a clean save of the same
  // content to a scratch path.
  const uint64_t before = injector->write_ops();
  ASSERT_TRUE(db->Save(scratch).ok());
  const uint64_t total_ops = injector->write_ops() - before;
  ASSERT_GE(total_ops, 3u);  // data, meta, rename at minimum
  RemoveDbFiles(scratch);

  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("crash at write op " + std::to_string(k));
    injector->CrashAfterWriteOps(static_cast<int>(k),
                                 /*torn_bytes=*/k % 2 == 0 ? 0 : 512);
    Status st = db->Save(path);
    EXPECT_FALSE(st.ok());
    injector->Restore();
    // The destination must open — as exactly one of the two states.
    auto reopened = MetricDatabase::Open(path);
    ASSERT_TRUE(reopened.ok())
        << "crash point " << k << ": " << reopened.status().ToString();
    const size_t live = (*reopened)->NumLiveObjects();
    ASSERT_TRUE(live == old_set.size() || live == new_set.size());
    EXPECT_TRUE(MatchesExpected(
        reopened->get(), live == old_set.size() ? old_set : new_set,
        probes));
  }
  // With the injector quiet the overwrite completes, and only the new
  // state remains.
  ASSERT_TRUE(db->Save(path).ok());
  auto final_db = MetricDatabase::Open(path);
  ASSERT_TRUE(final_db.ok());
  EXPECT_TRUE(MatchesExpected(final_db->get(), new_set, probes));
  EXPECT_FALSE(FileExists(path + ".tmp"));  // failed saves cleaned up
  RemoveDbFiles(path);
}

// --- the acceptance matrix ------------------------------------------------

// Kill-at-every-write-offset across all four backends, pivots off and on,
// in the two durability phases: (B) WAL appends — the reopened database
// must equal the checkpoint plus exactly the durably-appended prefix of
// the mutation history, with recovery counters matching that prefix; and
// (C) checkpoint — the fold is all-or-nothing over an already-durable WAL,
// so every crash point must recover the *full* state (old checkpoint +
// full WAL before the rename, new checkpoint + discarded stale WAL after).
// No crash point may surface as Corruption.
TEST(DurabilityCrashMatrixTest, KillAtEveryWalAppendOffset) {
  const Dataset base = MakeUniformDataset(90, 4, 81);
  const Dataset adds = MakeUniformDataset(6, 4, 82);
  const Dataset probes = MakeUniformDataset(3, 4, 83);
  const std::vector<Mutation> muts = MakeMutations(adds);

  for (BackendKind kind : kAllBackends) {
    for (bool pivots : {false, true}) {
      auto injector =
          std::make_shared<robust::FaultInjector>(robust::FaultPlan{});
      const std::string path =
          TempPath("durab_matrix_wal_" + BackendKindName(kind) +
                   (pivots ? "_p" : "") + ".msq");
      // One WAL append is one write op, so the mutation count bounds the
      // crash schedule; confirmed against the injector on the first pass.
      for (size_t k = 0; k <= muts.size(); ++k) {
        for (size_t torn : {size_t{0}, size_t{3}}) {
          if (k == muts.size() && torn != 0) continue;  // no op to tear
          SCOPED_TRACE(BackendKindName(kind) + (pivots ? "+pivots" : "") +
                       " crash after " + std::to_string(k) +
                       " appends, torn=" + std::to_string(torn));
          RemoveDbFiles(path);
          auto db = BuildDb(base, WalOptions(injector, kind, pivots));
          ASSERT_NE(db, nullptr);
          ASSERT_TRUE(db->Save(path).ok());

          const uint64_t ops_before = injector->write_ops();
          if (k < muts.size()) {
            injector->CrashAfterWriteOps(static_cast<int>(k), torn);
          }
          size_t succeeded = 0;
          for (const Mutation& m : muts) {
            Status st = m.is_insert ? db->Insert(m.row).status()
                                    : db->Delete(m.id);
            if (st.ok()) ++succeeded;
          }
          if (k < muts.size()) {
            // The crash landed inside append k: mutations 0..k-1 were
            // published, everything after was refused.
            EXPECT_EQ(succeeded, k);
          } else {
            EXPECT_EQ(succeeded, muts.size());
            EXPECT_EQ(injector->write_ops() - ops_before, muts.size())
                << "one WAL append should be exactly one write op";
          }
          injector->Restore();
          db.reset();  // crash: no checkpoint, no clean shutdown

          auto reopened = MetricDatabase::Open(path, WalOptions());
          ASSERT_TRUE(reopened.ok())
              << "recovery must never fail: "
              << reopened.status().ToString();
          const auto& recovery = (*reopened)->recovery();
          EXPECT_EQ(recovery.replayed_records, succeeded)
              << "every_record fsync: exactly the published prefix is "
                 "durable";
          EXPECT_EQ(recovery.recovered, succeeded > 0);
          EXPECT_TRUE(MatchesExpected(reopened->get(),
                                      ExpectedSet(base, muts, succeeded),
                                      probes));
        }
      }
      RemoveDbFiles(path);
    }
  }
}

TEST(DurabilityCrashMatrixTest, KillAtEveryCheckpointOffset) {
  const Dataset base = MakeUniformDataset(90, 4, 91);
  const Dataset adds = MakeUniformDataset(6, 4, 92);
  const Dataset probes = MakeUniformDataset(3, 4, 93);
  const std::vector<Mutation> muts = MakeMutations(adds);
  const Dataset full_set = ExpectedSet(base, muts, muts.size());

  for (BackendKind kind : kAllBackends) {
    for (bool pivots : {false, true}) {
      auto injector =
          std::make_shared<robust::FaultInjector>(robust::FaultPlan{});
      const std::string path =
          TempPath("durab_matrix_ckpt_" + BackendKindName(kind) +
                   (pivots ? "_p" : "") + ".msq");

      auto setup = [&]() -> std::unique_ptr<MetricDatabase> {
        RemoveDbFiles(path);
        auto db = BuildDb(base, WalOptions(injector, kind, pivots));
        if (db == nullptr) return nullptr;
        if (!db->Save(path).ok()) return nullptr;
        for (const Mutation& m : muts) {
          Status st =
              m.is_insert ? db->Insert(m.row).status() : db->Delete(m.id);
          if (!st.ok()) return nullptr;
        }
        return db;
      };

      // Clean run: learn the checkpoint's write-op count.
      auto db = setup();
      ASSERT_NE(db, nullptr);
      const uint64_t before = injector->write_ops();
      ASSERT_TRUE(db->Checkpoint().ok());
      const uint64_t total_ops = injector->write_ops() - before;
      ASSERT_GE(total_ops, 3u);

      for (uint64_t k = 0; k < total_ops; ++k) {
        SCOPED_TRACE(BackendKindName(kind) + (pivots ? "+pivots" : "") +
                     " crash at checkpoint op " + std::to_string(k));
        db = setup();
        ASSERT_NE(db, nullptr);
        injector->CrashAfterWriteOps(static_cast<int>(k),
                                     /*torn_bytes=*/k % 2 == 0 ? 0 : 256);
        Status st = db->Checkpoint();
        EXPECT_FALSE(st.ok());
        injector->Restore();
        db.reset();

        // Whatever the crash point — before the temp file finished,
        // before the rename, between rename and WAL swap — the durable
        // state is the full mutation history.
        auto reopened = MetricDatabase::Open(path, WalOptions());
        ASSERT_TRUE(reopened.ok())
            << "recovery must never fail: " << reopened.status().ToString();
        EXPECT_TRUE(
            MatchesExpected(reopened->get(), full_set, probes));
      }
      RemoveDbFiles(path);
    }
  }
}

// --- concurrent WAL writers and queries (the TSan target) -----------------

TEST(DurabilityStressTest, ConcurrentWalWritersAndQueries) {
  constexpr int kWriters = 3;
  constexpr int kInsertsPerWriter = 30;
  constexpr int kQueriesPerThread = 40;
  const Dataset base = MakeUniformDataset(200, 4, 101);
  const Dataset probes = MakeUniformDataset(8, 4, 102);
  const std::string path = TempPath("durab_stress.msq");
  RemoveDbFiles(path);
  DatabaseOptions options = WalOptions();
  options.durability.wal_fsync_policy = WalFsyncPolicy::kEveryN;
  options.durability.wal_fsync_every_n = 8;
  auto db = BuildDb(base, options);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Save(path).ok());

  std::atomic<bool> failed{false};
  std::mutex query_mu;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        Vec v(4);
        for (size_t d = 0; d < 4; ++d) {
          v[d] = static_cast<Scalar>((w * 100 + i + d) % 97) / 97.0f;
        }
        if (!db->Insert(std::move(v)).ok()) {
          failed = true;
          return;
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const Vec& p = probes.object(static_cast<ObjectId>((t + i) % 8));
        std::lock_guard<std::mutex> lock(query_mu);
        auto got = db->SimilarityQuery(db->MakeKnnQuery(p, 5));
        if (!got.ok()) {
          failed = true;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());
  const size_t total = base.size() + kWriters * kInsertsPerWriter;
  EXPECT_EQ(db->NumLiveObjects(), total);
  db.reset();  // no checkpoint: reopen replays every concurrent insert

  auto reopened = MetricDatabase::Open(path, WalOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().replayed_records,
            static_cast<uint64_t>(kWriters * kInsertsPerWriter));
  EXPECT_EQ((*reopened)->NumLiveObjects(), total);
  RemoveDbFiles(path);
}

TEST(DurabilityStressTest, MonitorAccessorsRaceAutoCheckpointWalSwaps) {
  // The durability accessors (bound_path, WalSizeBytes, wal_attached)
  // take writer_mu_: a monitoring thread polling them while the writer's
  // auto-checkpoints swap wal_ out must be race-free — this is the TSan
  // target for those accessors.
  const Dataset base = MakeUniformDataset(80, 4, 141);
  const std::string path = TempPath("durab_monitor.msq");
  RemoveDbFiles(path);
  DatabaseOptions options = WalOptions();
  options.durability.auto_checkpoint_wal_bytes = 1;  // fold every mutation
  auto db = BuildDb(base, options);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Save(path).ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread monitor([&] {
    while (!stop.load()) {
      if (db->bound_path().empty()) failed = true;
      (void)db->WalSizeBytes();
      (void)db->wal_attached();
    }
  });
  constexpr int kMutations = 40;
  for (int i = 0; i < kMutations; ++i) {
    Vec v(4, static_cast<Scalar>(i + 1) / (kMutations + 1));
    ASSERT_TRUE(db->Insert(std::move(v)).ok());
  }
  stop = true;
  monitor.join();
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(db->NumLiveObjects(), base.size() + kMutations);
  RemoveDbFiles(path);
}

}  // namespace
}  // namespace msq
