// Randomized property sweeps over the whole engine stack: for random
// datasets, random backend choices, and random mixes of query types, the
// multiple-query engine must return exactly the brute-force answers, all
// buffered partial answers must be sound, and cost counters must respect
// their invariants. One TEST_P instance per seed.

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

struct RandomSetup {
  Dataset dataset;
  DatabaseOptions options;
  std::vector<Query> queries;
};

RandomSetup MakeRandomSetup(uint64_t seed) {
  Rng rng(seed);
  RandomSetup setup;

  const size_t dim = 2 + rng.NextIndex(7);            // 2..8
  const size_t n = 200 + rng.NextIndex(1200);          // 200..1400
  if (rng.NextDouble() < 0.5) {
    setup.dataset = MakeUniformDataset(n, dim, rng.NextU64());
  } else {
    setup.dataset = MakeGaussianClustersDataset(
        n, dim, 2 + rng.NextIndex(8), rng.NextDouble(0.01, 0.1),
        rng.NextU64());
  }

  const BackendKind kinds[] = {BackendKind::kLinearScan, BackendKind::kXTree,
                               BackendKind::kMTree, BackendKind::kVaFile};
  setup.options.backend = kinds[rng.NextIndex(4)];
  setup.options.page_size_bytes = 512u << rng.NextIndex(4);  // 512..4096
  setup.options.xtree_dynamic_build = rng.NextDouble() < 0.3;
  setup.options.multi.enable_io_sharing = rng.NextDouble() < 0.9;
  setup.options.multi.enable_triangle_avoidance = rng.NextDouble() < 0.9;
  setup.options.multi.avoidance_max_witnesses = 1 + rng.NextIndex(16);

  const size_t m = 2 + rng.NextIndex(20);
  const auto ids = rng.SampleWithoutReplacement(n, m);
  for (uint64_t id : ids) {
    const Vec& point = setup.dataset.object(static_cast<ObjectId>(id));
    Query q;
    q.id = id;
    q.point = point;
    switch (rng.NextIndex(3)) {
      case 0:
        q.type = QueryType::Knn(1 + rng.NextIndex(15));
        break;
      case 1:
        q.type = QueryType::Range(rng.NextDouble(0.01, 0.5));
        break;
      default:
        q.type = QueryType::BoundedKnn(1 + rng.NextIndex(15),
                                       rng.NextDouble(0.05, 0.5));
        break;
    }
    setup.queries.push_back(std::move(q));
  }
  return setup;
}

TEST_P(EnginePropertyTest, MultiQueryMatchesBruteForceOnRandomConfig) {
  RandomSetup setup = MakeRandomSetup(GetParam());
  EuclideanMetric metric;
  auto db = MetricDatabase::Open(setup.dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 setup.options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto all = (*db)->MultipleSimilarityQueryAll(setup.queries);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  for (size_t i = 0; i < setup.queries.size(); ++i) {
    const AnswerSet expected =
        BruteForceQuery(setup.dataset, metric, setup.queries[i]);
    EXPECT_TRUE(SameAnswers((*all)[i], expected))
        << "seed=" << GetParam() << " backend="
        << BackendKindName(setup.options.backend) << " query " << i << " ("
        << setup.queries[i].type.ToString() << ")";
  }
}

TEST_P(EnginePropertyTest, PartialAnswersAfterOneCallAreSound) {
  RandomSetup setup = MakeRandomSetup(GetParam() + 1000);
  EuclideanMetric metric;
  auto db = MetricDatabase::Open(setup.dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 setup.options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->MultipleSimilarityQuery(setup.queries);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Requirement 1 of Definition 4.
  EXPECT_TRUE(SameAnswers(
      result->answers[0],
      BruteForceQuery(setup.dataset, metric, setup.queries[0])));
  // Requirement 2 (Definition 4): partial answers are candidates drawn
  // from the database with exact distances. For range queries they are
  // moreover guaranteed final answers (any object within eps stays an
  // answer); for kNN queries they are the best-so-far and may still be
  // evicted, so only distances and cardinality bounds can be asserted.
  for (size_t i = 1; i < setup.queries.size(); ++i) {
    const Query& q = setup.queries[i];
    const AnswerSet expected = BruteForceQuery(setup.dataset, metric, q);
    if (q.type.Adaptive()) {
      EXPECT_LE(result->answers[i].size(), q.type.cardinality);
    }
    for (const Neighbor& nb : result->answers[i]) {
      EXPECT_NEAR(nb.distance,
                  metric.Distance(q.point, setup.dataset.object(nb.id)),
                  1e-9);
      EXPECT_LE(nb.distance, q.type.range);
      if (!q.type.Adaptive()) {
        EXPECT_TRUE(
            std::binary_search(expected.begin(), expected.end(), nb))
            << "seed=" << GetParam() << " range query " << i;
      }
    }
  }
}

TEST_P(EnginePropertyTest, CostCountersSatisfyInvariants) {
  RandomSetup setup = MakeRandomSetup(GetParam() + 2000);
  auto db = MetricDatabase::Open(setup.dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 setup.options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->MultipleSimilarityQueryAll(setup.queries).ok());
  const QueryStats& s = (*db)->stats();
  // Every avoided computation required at least one try.
  EXPECT_LE(s.triangle_avoided, s.triangle_tries);
  // All queries completed, answers within their cardinality bounds.
  EXPECT_EQ(s.queries_completed, setup.queries.size());
  // The matrix is at most m(m-1)/2 pairs (may be fewer: cache reuse).
  const size_t m = setup.queries.size();
  EXPECT_LE(s.matrix_dist_computations, m * (m - 1) / 2);
  // Page accounting: reads plus buffer hits cover every page access.
  EXPECT_GE(s.TotalPageReads() + s.buffer_hits, s.TotalPageReads());
}

TEST_P(EnginePropertyTest, RepeatedExecutionIsIdempotent) {
  RandomSetup setup = MakeRandomSetup(GetParam() + 3000);
  auto db = MetricDatabase::Open(setup.dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 setup.options);
  ASSERT_TRUE(db.ok());
  auto first = (*db)->MultipleSimilarityQueryAll(setup.queries);
  ASSERT_TRUE(first.ok());
  auto second = (*db)->MultipleSimilarityQueryAll(setup.queries);
  ASSERT_TRUE(second.ok());
  for (size_t i = 0; i < setup.queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*first)[i], (*second)[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace msq
