// Tests of replicated declustering and automatic failover: chained replica
// placement, bit-identical answers under single-server loss, the per-server
// circuit breaker (trip, skip, half-open probe, close), quorum reporting,
// the per-server attempt counts of ExecuteMultipleAllPartial, and the
// concurrent-batches-vs-flapping-server stress the TSan CI job runs.

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "parallel/cluster.h"
#include "parallel/decluster.h"
#include "robust/fault_injector.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

// ---------------------------------------------------------------------
// Replica placement
// ---------------------------------------------------------------------

TEST(FailoverPlacementTest, ChainedPlacementUsesDistinctConsecutiveServers) {
  auto got = PlaceReplicas(6, 6, 3);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 6u);
  for (size_t p = 0; p < 6; ++p) {
    ASSERT_EQ((*got)[p].size(), 3u);
    EXPECT_EQ((*got)[p][0], p) << "entry 0 must be the primary";
    std::set<size_t> distinct((*got)[p].begin(), (*got)[p].end());
    EXPECT_EQ(distinct.size(), 3u) << "replicas of partition " << p
                                   << " must land on distinct servers";
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ((*got)[p][j], (p + j) % 6);
  }
  // With one partition per server, every server hosts exactly r partitions
  // — losing one server spreads its load over the next r-1 in the chain.
  std::vector<size_t> hosted(6, 0);
  for (const auto& replicas : *got) {
    for (size_t server : replicas) ++hosted[server];
  }
  for (size_t server = 0; server < 6; ++server) EXPECT_EQ(hosted[server], 3u);
}

TEST(FailoverPlacementTest, RejectsDegenerateArguments) {
  EXPECT_TRUE(PlaceReplicas(0, 4, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PlaceReplicas(4, 0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PlaceReplicas(4, 4, 0).status().IsInvalidArgument());
  EXPECT_TRUE(PlaceReplicas(4, 4, 5).status().IsInvalidArgument());
  // r == s is the full-replication boundary and is legal.
  EXPECT_TRUE(PlaceReplicas(4, 4, 4).ok());
}

// ---------------------------------------------------------------------
// Cluster failover
// ---------------------------------------------------------------------

struct FailoverFixture {
  Dataset dataset;
  std::shared_ptr<const Metric> metric;
  std::vector<std::shared_ptr<robust::FaultInjector>> injectors;
  std::unique_ptr<SharedNothingCluster> cluster;
};

struct FailoverConfig {
  size_t servers = 4;
  size_t replication_factor = 2;
  ClusterRetryPolicy retry;
  CircuitBreakerOptions breaker;
  bool partial_results = false;
  const obs::MetricsSink* metrics = nullptr;
};

FailoverFixture MakeReplicatedCluster(uint64_t seed,
                                      const FailoverConfig& cfg = {}) {
  FailoverFixture fx;
  fx.dataset = MakeUniformDataset(800, 4, seed);
  fx.metric = std::make_shared<EuclideanMetric>();
  ClusterOptions options;
  options.num_servers = cfg.servers;
  options.replication_factor = cfg.replication_factor;
  options.strategy = DeclusterStrategy::kRoundRobin;
  options.server_options.backend = BackendKind::kLinearScan;
  options.server_options.page_size_bytes = 2048;
  options.retry = cfg.retry;
  options.breaker = cfg.breaker;
  options.partial_results = cfg.partial_results;
  options.metrics = cfg.metrics;
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  for (size_t i = 0; i < cfg.servers; ++i) {
    fx.injectors.push_back(std::make_shared<robust::FaultInjector>(plan));
  }
  options.server_faults = fx.injectors;
  auto cluster = SharedNothingCluster::Create(fx.dataset, fx.metric, options);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  fx.cluster = std::move(cluster).value();
  return fx;
}

std::vector<Query> FailoverQueries(const Dataset& ds, uint64_t id_base = 700) {
  std::vector<Query> queries;
  for (uint64_t i = 0; i < 6; ++i) {
    queries.push_back(Query{id_base + i,
                            ds.object(static_cast<ObjectId>(i * 13)),
                            i % 2 == 0 ? QueryType::Knn(5)
                                       : QueryType::Range(0.25)});
  }
  return queries;
}

bool BitIdentical(const std::vector<AnswerSet>& a,
                  const std::vector<AnswerSet>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].distance != b[q][i].distance) {
        return false;
      }
    }
  }
  return true;
}

// The acceptance bar of the failover layer: replication_factor = 2, any
// single server crashed, and ExecuteMultipleAll still returns ok() with
// answers bit-identical to the fault-free run; the partial surface shows
// no missing partition and the failover counter fired.
TEST(FailoverClusterTest, SingleCrashYieldsBitIdenticalAnswers) {
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry, nullptr);

  FailoverFixture reference = MakeReplicatedCluster(2101);
  const std::vector<Query> queries = FailoverQueries(reference.dataset);
  auto expected = reference.cluster->ExecuteMultipleAll(queries);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (size_t crashed = 0; crashed < 4; ++crashed) {
    FailoverConfig cfg;
    cfg.metrics = &sink;
    FailoverFixture fx = MakeReplicatedCluster(2101, cfg);
    fx.injectors[crashed]->Crash();

    auto got = fx.cluster->ExecuteMultipleAll(queries);
    ASSERT_TRUE(got.ok())
        << "crashed " << crashed << ": " << got.status().ToString();
    EXPECT_TRUE(BitIdentical(*got, *expected)) << "crashed " << crashed;
    EXPECT_GE(fx.cluster->failovers(), 1u);

    // Fresh queries so the partial call does real work instead of serving
    // buffered answers.
    auto partial =
        fx.cluster->ExecuteMultipleAllPartial(FailoverQueries(
            fx.dataset, 800 + 10 * crashed));
    ASSERT_TRUE(partial.ok());
    EXPECT_TRUE(partial->missing_servers.empty())
        << "crashed " << crashed << ": failover must leave no partition lost";
    EXPECT_GE(partial->failovers, 1u);
    EXPECT_GE(partial->replica_reissues, 1u);
  }
  EXPECT_GE(
      registry.GetCounter("msq_cluster_failovers_total")->Value(), 4u);
  EXPECT_GE(
      registry.GetCounter("msq_cluster_replica_reissues_total")->Value(), 4u);
}

// Chained placement, r = 2: partition p lives on servers p and p+1, so
// crashing servers 1 and 2 kills both replicas of partition 1 — true
// quorum loss. The strict path names the lost partition; the partial path
// serves the survivors and reports exactly that partition missing.
TEST(FailoverClusterTest, AllReplicasDownNamesLostPartitions) {
  FailoverFixture fx = MakeReplicatedCluster(2103);
  const std::vector<Query> queries = FailoverQueries(fx.dataset);
  fx.injectors[1]->Crash();
  fx.injectors[2]->Crash();

  auto strict = fx.cluster->ExecuteMultipleAll(queries);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsUnavailable()) << strict.status().ToString();
  const std::string& msg = strict.status().message();
  EXPECT_NE(msg.find("1 of 4 servers failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("server 1"), std::string::npos) << msg;

  auto partial = fx.cluster->ExecuteMultipleAllPartial(queries);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->missing_servers, (std::vector<size_t>{1}));

  // Oracle: the merged answers are exact over the surviving partitions.
  std::vector<Vec> surviving;
  std::vector<ObjectId> surviving_global;
  for (size_t p = 0; p < 4; ++p) {
    if (p == 1) continue;
    for (ObjectId global : fx.cluster->partitions()[p]) {
      surviving.push_back(fx.dataset.object(global));
      surviving_global.push_back(global);
    }
  }
  Dataset surviving_ds(fx.dataset.dim(), surviving);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    AnswerSet expected = BruteForceQuery(surviving_ds, *fx.metric, queries[qi]);
    for (Neighbor& nb : expected) nb.id = surviving_global[nb.id];
    std::sort(expected.begin(), expected.end());
    EXPECT_TRUE(SameAnswers(partial->answers[qi], expected)) << "query " << qi;
  }
}

// Satellite: a server that succeeded only after transient-fault retries is
// invisible in server_status (OK) but visible in server_attempts.
TEST(FailoverClusterTest, AttemptsExposeRetriedSuccess) {
  FailoverConfig cfg;
  cfg.retry.max_retries = 2;
  FailoverFixture fx = MakeReplicatedCluster(2105, cfg);
  const std::vector<Query> queries = FailoverQueries(fx.dataset);
  fx.injectors[2]->FailNextPageReads(1);

  auto got = fx.cluster->ExecuteMultipleAllPartial(queries);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->missing_servers.empty());
  ASSERT_EQ(got->server_attempts.size(), 4u);
  ASSERT_EQ(got->server_status.size(), 4u);
  // The retried server: OK status, but the extra attempt is on record.
  EXPECT_TRUE(got->server_status[2].ok());
  EXPECT_EQ(got->server_attempts[2], 2);
  // Healthy servers ran their primary partition exactly once.
  EXPECT_EQ(got->server_attempts[0], 1);
  EXPECT_EQ(got->server_attempts[1], 1);
  EXPECT_EQ(got->server_attempts[3], 1);
  EXPECT_EQ(got->failovers, 0u);
  EXPECT_EQ(got->replica_reissues, 0u);
  EXPECT_EQ(fx.cluster->retries_attempted(), 1u);
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

// Two consecutive failed calls trip the breaker; with the cooldown still
// running, later calls skip the server outright (zero attempts) and serve
// its partitions from replicas.
TEST(FailoverBreakerTest, OpensAfterConsecutiveFailuresAndSkips) {
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry, nullptr);
  FailoverConfig cfg;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_cooldown = std::chrono::minutes(10);
  cfg.metrics = &sink;
  FailoverFixture fx = MakeReplicatedCluster(2107, cfg);
  fx.injectors[0]->Crash();

  for (int call = 0; call < 2; ++call) {
    auto got = fx.cluster->ExecuteMultipleAllPartial(
        FailoverQueries(fx.dataset, 700 + 10 * call));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->missing_servers.empty()) << "call " << call;
    EXPECT_EQ(got->server_attempts[0], 1) << "call " << call;
  }
  EXPECT_EQ(fx.cluster->breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(registry
                .GetGauge("msq_cluster_breaker_state", "", "server=\"0\"")
                ->Value(),
            static_cast<int64_t>(BreakerState::kOpen));

  // Third call: the open breaker refuses server 0 before any I/O — its
  // partition goes straight to the replica.
  auto got = fx.cluster->ExecuteMultipleAllPartial(
      FailoverQueries(fx.dataset, 760));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->missing_servers.empty());
  EXPECT_EQ(got->server_attempts[0], 0);
  EXPECT_GE(got->replica_reissues, 1u);
  // Breaker-skip is not a new server loss: no failover event this call.
  EXPECT_EQ(got->failovers, 0u);
}

// With the cooldown elapsed (zero here), the next call admits exactly one
// probe. Against a still-down server the probe fails and re-opens the
// breaker; after Restore() the probe succeeds and closes it.
TEST(FailoverBreakerTest, HalfOpenProbeReopensThenClosesAfterRestore) {
  FailoverConfig cfg;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.open_cooldown = std::chrono::microseconds(0);
  FailoverFixture fx = MakeReplicatedCluster(2109, cfg);
  fx.injectors[0]->Crash();

  auto first = fx.cluster->ExecuteMultipleAllPartial(
      FailoverQueries(fx.dataset, 700));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->missing_servers.empty());
  EXPECT_EQ(fx.cluster->breaker_state(0), BreakerState::kOpen);

  // Probe against the still-down server: fails, breaker re-opens.
  auto second = fx.cluster->ExecuteMultipleAllPartial(
      FailoverQueries(fx.dataset, 710));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->missing_servers.empty());
  EXPECT_EQ(second->server_attempts[0], 1);
  EXPECT_EQ(fx.cluster->breaker_state(0), BreakerState::kOpen);

  fx.injectors[0]->Restore();
  auto third = fx.cluster->ExecuteMultipleAllPartial(
      FailoverQueries(fx.dataset, 720));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->missing_servers.empty());
  EXPECT_EQ(fx.cluster->breaker_state(0), BreakerState::kClosed);

  // Healthy again: the next call runs its primary partition normally.
  auto fourth = fx.cluster->ExecuteMultipleAllPartial(
      FailoverQueries(fx.dataset, 730));
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth->server_attempts[0], 1);
  EXPECT_EQ(fourth->replica_reissues, 0u);
}

// ---------------------------------------------------------------------
// Quorum
// ---------------------------------------------------------------------

// Unreplicated cluster, breaker open with a long cooldown: partition 0 has
// no admissible replica, so quorum is lost and QuorumStatus names it —
// the signal BatchSchedulerOptions::admission_check turns into load
// shedding.
TEST(FailoverQuorumTest, LostPartitionDropsQuorum) {
  FailoverConfig cfg;
  cfg.replication_factor = 1;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.open_cooldown = std::chrono::minutes(10);
  FailoverFixture fx = MakeReplicatedCluster(2111, cfg);
  EXPECT_TRUE(fx.cluster->HasQuorum());

  fx.injectors[0]->Crash();
  auto got = fx.cluster->ExecuteMultipleAllPartial(
      FailoverQueries(fx.dataset));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->missing_servers, (std::vector<size_t>{0}));

  EXPECT_FALSE(fx.cluster->HasQuorum());
  Status quorum = fx.cluster->QuorumStatus();
  EXPECT_TRUE(quorum.IsResourceExhausted()) << quorum.ToString();
  EXPECT_NE(quorum.message().find("partition(s) 0"), std::string::npos)
      << quorum.message();
}

TEST(FailoverQuorumTest, ReplicationKeepsQuorumThroughOneOpenBreaker) {
  FailoverConfig cfg;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.open_cooldown = std::chrono::minutes(10);
  FailoverFixture fx = MakeReplicatedCluster(2113, cfg);
  fx.injectors[0]->Crash();
  ASSERT_TRUE(
      fx.cluster->ExecuteMultipleAllPartial(FailoverQueries(fx.dataset)).ok());
  EXPECT_EQ(fx.cluster->breaker_state(0), BreakerState::kOpen);
  // Every partition still has a live replica: quorum holds.
  EXPECT_TRUE(fx.cluster->HasQuorum());
}

// ---------------------------------------------------------------------
// Concurrency stress (runs under TSan in CI)
// ---------------------------------------------------------------------

// Four producer threads hammer one replicated cluster while a flapper
// toggles server 1 between crashed and restored. Every partition keeps a
// never-failing replica, so every call must return complete answers
// bit-identical to the fault-free reference — no double-issued partition,
// no deadlock, no torn breaker state. TSan watches the rest.
TEST(FailoverStressTest, ConcurrentBatchesAgainstFlappingServer) {
  FailoverConfig cfg;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_cooldown = std::chrono::microseconds(0);
  cfg.retry.max_retries = 1;
  FailoverFixture fx = MakeReplicatedCluster(2115, cfg);

  FailoverFixture reference = MakeReplicatedCluster(2115);
  constexpr int kProducers = 4;
  constexpr int kCallsPerProducer = 10;
  std::vector<std::vector<Query>> batches;
  std::vector<std::vector<AnswerSet>> expected;
  for (int p = 0; p < kProducers; ++p) {
    batches.push_back(
        FailoverQueries(fx.dataset, 3000 + 100 * static_cast<uint64_t>(p)));
    auto got = reference.cluster->ExecuteMultipleAll(batches.back());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    expected.push_back(std::move(got).value());
  }

  std::atomic<bool> stop{false};
  std::thread flapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      fx.injectors[1]->Crash();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      fx.injectors[1]->Restore();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::atomic<int> failures{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int call = 0; call < kCallsPerProducer; ++call) {
        auto got = fx.cluster->ExecuteMultipleAllPartial(batches[p]);
        if (!got.ok() || !got->missing_servers.empty() ||
            !BitIdentical(got->answers, expected[p])) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  flapper.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------
// ExecuteBatch (the BatchScheduler executor adapter)
// ---------------------------------------------------------------------

TEST(FailoverClusterTest, ExecuteBatchMatchesExecuteMultipleAll) {
  FailoverFixture fx = MakeReplicatedCluster(2401);
  const std::vector<Query> queries = FailoverQueries(fx.dataset);

  auto expected = fx.cluster->ExecuteMultipleAll(queries);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Fresh ids, same definitions: the engines' answer buffers are keyed by
  // QueryId, so reusing ids would answer from the buffer without touching
  // storage (and without charging any engine work).
  QueryStats stats;
  std::vector<Query> fresh = FailoverQueries(fx.dataset, 760);
  auto got = fx.cluster->ExecuteBatch(fresh, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(BitIdentical(got->answers, *expected));
  ASSERT_EQ(got->statuses.size(), fresh.size());
  for (const Status& s : got->statuses) EXPECT_TRUE(s.ok());
  // The call's attribution surfaced: real engine work was charged, and
  // the coordinator-side merge time is nonzero.
  EXPECT_GT(stats.dist_computations, 0u);
  EXPECT_GT(stats.attr_merge_micros, 0.0);
}

TEST(FailoverClusterTest, ExecuteBatchSurvivesCrashAndChargesRetry) {
  FailoverConfig cfg;
  cfg.retry.max_retries = 1;
  FailoverFixture fx = MakeReplicatedCluster(2403, cfg);
  const std::vector<Query> queries = FailoverQueries(fx.dataset);

  auto expected = fx.cluster->ExecuteBatch(queries, nullptr);
  ASSERT_TRUE(expected.ok());

  fx.injectors[1]->Crash();
  // Fresh ids so the crashed server actually has to read pages (buffered
  // answers would satisfy the repeat without touching storage).
  std::vector<Query> fresh = FailoverQueries(fx.dataset, 760);
  QueryStats stats;
  auto got = fx.cluster->ExecuteBatch(fresh, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(BitIdentical(got->answers, expected->answers));
  for (const Status& s : got->statuses) EXPECT_TRUE(s.ok());
  // The crashed server's failed attempt billed its unproductive wall time
  // to the retry component.
  EXPECT_GT(stats.attr_retry_micros, 0.0);
}

TEST(FailoverClusterTest, ExecuteBatchQuorumLossFailsEveryQueryStatus) {
  FailoverFixture fx = MakeReplicatedCluster(2405);
  const std::vector<Query> queries = FailoverQueries(fx.dataset);
  // replication_factor = 2: partitions 1's replicas live on servers 1, 2.
  fx.injectors[1]->Crash();
  fx.injectors[2]->Crash();
  auto got = fx.cluster->ExecuteBatch(queries, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->statuses.size(), queries.size());
  for (const Status& s : got->statuses) {
    EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
    EXPECT_NE(s.message().find("partition"), std::string::npos);
  }
}

}  // namespace
}  // namespace msq
