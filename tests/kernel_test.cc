// Tests for the batched distance-kernel execution layer: bit-exactness of
// Metric::BatchDistance against the scalar Distance path, CountingMetric
// batch accounting, the PageBlock read path of every backend (including the
// default gather fallback), the PageKernel itself, and cost-count
// equivalence of the batched engines against the scalar reference mode.

#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "core/page_kernel.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "dist/counting_metric.h"
#include "dist/vector.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::SameAnswers;

/// Deterministic random block of `count` rows plus a query point.
struct TestBlockData {
  Vec query;
  std::vector<Vec> rows;
  std::vector<Scalar> packed;
  std::vector<Scalar> tiles;

  TestBlockData(size_t dim, size_t count, uint64_t seed) {
    Rng rng(seed);
    query.resize(dim);
    for (auto& x : query) x = static_cast<Scalar>(rng.NextDouble());
    rows.assign(count, Vec(dim));
    packed.resize(count * dim);
    for (size_t i = 0; i < count; ++i) {
      for (size_t d = 0; d < dim; ++d) {
        const auto v = static_cast<Scalar>(rng.NextDouble() * 2.0 - 1.0);
        rows[i][d] = v;
        packed[i * dim + d] = v;
      }
    }
    tiles = MakeVecBlockTiles(packed.data(), dim, count);
  }

  VecBlock TiledBlock() const {
    return VecBlock{packed.data(), query.size(), rows.size(), tiles.data()};
  }
  VecBlock RowOnlyBlock() const {
    return VecBlock{packed.data(), query.size(), rows.size()};
  }
};

std::vector<std::shared_ptr<const Metric>> AllBatchMetrics(size_t dim) {
  std::vector<double> weights(dim);
  for (size_t d = 0; d < dim; ++d) weights[d] = 0.25 + 0.03 * d;
  auto weighted = WeightedEuclideanMetric::Make(std::move(weights));
  auto minkowski = MinkowskiMetric::Make(3.0);
  return {
      std::make_shared<EuclideanMetric>(),
      std::make_shared<WeightedEuclideanMetric>(std::move(weighted).value()),
      std::make_shared<ManhattanMetric>(),
      std::make_shared<ChebyshevMetric>(),
      std::make_shared<MinkowskiMetric>(std::move(minkowski).value()),
      // No BatchDistance override: exercises the Metric base fallback.
      std::make_shared<AngularMetric>(),
  };
}

// BatchDistance must be bit-identical to the scalar Distance loop for
// every built-in metric, dimensionality, block size, and for both the
// tile-mirrored and the row-major-only block representation (they take
// different code paths in the kernels).
TEST(BatchKernelBitExactTest, MatchesScalarDistanceExactly) {
  for (size_t dim : {1u, 2u, 16u, 64u}) {
    for (size_t count : {0u, 1u, 7u, 16u, 33u, 64u}) {
      TestBlockData data(dim, count, 1000 + dim * 101 + count);
      for (const auto& metric : AllBatchMetrics(dim)) {
        std::vector<double> batched(count, -1.0);
        for (const VecBlock& block :
             {data.TiledBlock(), data.RowOnlyBlock()}) {
          metric->BatchDistance(data.query, block, batched);
          for (size_t i = 0; i < count; ++i) {
            const double scalar = metric->Distance(data.query, data.rows[i]);
            // EXACT equality — the kernels never reassociate a row's sum.
            ASSERT_EQ(scalar, batched[i])
                << metric->Name() << " dim=" << dim << " count=" << count
                << " row=" << i
                << (block.tiles != nullptr ? " (tiled)" : " (row-major)");
          }
        }
      }
    }
  }
}

// The tile mirror is a pure re-layout: every (row, dim) element must
// appear at its tile position, and tiled_count() covers exactly the full
// 16-row groups.
TEST(BatchKernelBitExactTest, TileMirrorLayout) {
  const size_t dim = 5;
  for (size_t count : {0u, 15u, 16u, 40u}) {
    TestBlockData data(dim, count, 77 + count);
    const VecBlock block = data.TiledBlock();
    EXPECT_EQ(block.tiled_count(), count - count % kVecBlockTileRows);
    for (size_t i = 0; i < block.tiled_count(); ++i) {
      const size_t g = i / kVecBlockTileRows;
      const size_t r = i % kVecBlockTileRows;
      for (size_t d = 0; d < dim; ++d) {
        EXPECT_EQ(block.row(i)[d],
                  block.tiles[g * dim * kVecBlockTileRows +
                              d * kVecBlockTileRows + r]);
      }
    }
    EXPECT_EQ(VecBlock{}.tiled_count(), 0u);
  }
}

// CountingMetric: BatchDistance charges the whole block in one shot;
// BatchDistanceUncounted charges nothing until ChargeDistances.
TEST(KernelCountingMetricTest, BatchAccounting) {
  TestBlockData data(8, 21, 9);
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  QueryStats stats;
  std::vector<double> out(21);

  {
    ScopedStatsSink sink(metric, &stats);
    metric.BatchDistance(data.query, data.TiledBlock(), out);
    EXPECT_EQ(stats.dist_computations, 21u);

    metric.BatchDistanceUncounted(data.query, data.TiledBlock(), out);
    EXPECT_EQ(stats.dist_computations, 21u);

    metric.ChargeDistances(5);
    EXPECT_EQ(stats.dist_computations, 26u);
  }
  // Sink detached: nothing is charged anywhere.
  metric.BatchDistance(data.query, data.TiledBlock(), out);
  EXPECT_EQ(stats.dist_computations, 26u);
}

struct BackendCase {
  BackendKind kind;
};

class KernelBlockReadTest : public ::testing::TestWithParam<BackendCase> {};

// ReadPageBlockChecked must return, for every page of every backend, the
// same ids as ReadPage and rows identical to the objects' vectors — with
// a tile mirror consistent with the row data.
TEST_P(KernelBlockReadTest, BlockMatchesObjectVectors) {
  DatabaseOptions options;
  options.backend = GetParam().kind;
  options.page_size_bytes = 1024;
  auto db = MetricDatabase::Open(MakeGaussianClustersDataset(600, 6, 5, 0.1, 11),
                                 std::make_shared<EuclideanMetric>(), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  QueryBackend& backend = (*db)->backend();

  // Trees finalize their layout lazily on first access.
  QueryStats warm;
  backend.ReadPage(0, &warm);

  for (PageId page = 0; page < backend.NumDataPages(); ++page) {
    QueryStats stats;
    PageBlock block;
    ASSERT_TRUE(backend.ReadPageBlockChecked(page, &stats, &block).ok());
    const std::vector<ObjectId>& ids = backend.ReadPage(page, &stats);
    ASSERT_EQ(block.size(), ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(block.ids[i], ids[i]);
      const Vec& expected = backend.ObjectVec(ids[i]);
      ASSERT_EQ(block.vecs.dim, expected.size());
      for (size_t d = 0; d < expected.size(); ++d) {
        EXPECT_EQ(block.vecs.row(i)[d], expected[d]);
      }
    }
    for (size_t i = 0; i < block.vecs.tiled_count(); ++i) {
      const size_t g = i / kVecBlockTileRows;
      const size_t r = i % kVecBlockTileRows;
      for (size_t d = 0; d < block.vecs.dim; ++d) {
        EXPECT_EQ(block.vecs.row(i)[d],
                  block.vecs.tiles[g * block.vecs.dim * kVecBlockTileRows +
                                   d * kVecBlockTileRows + r]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, KernelBlockReadTest,
    ::testing::Values(BackendCase{BackendKind::kLinearScan},
                      BackendCase{BackendKind::kVaFile},
                      BackendCase{BackendKind::kXTree},
                      BackendCase{BackendKind::kMTree}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return BackendKindName(info.param.kind);
    });

/// Forwards everything to an inner backend but deliberately does NOT
/// override ReadPageBlockChecked — exercising QueryBackend's default
/// gather implementation.
class ForwardingBackend : public QueryBackend {
 public:
  explicit ForwardingBackend(QueryBackend* inner) : inner_(inner) {}
  std::string Name() const override { return "forwarding"; }
  std::unique_ptr<CandidateStream> OpenStream(const Query& query,
                                              QueryStats* stats) override {
    return inner_->OpenStream(query, stats);
  }
  double PageMinDist(PageId page, const Query& q, QueryStats* stats) override {
    return inner_->PageMinDist(page, q, stats);
  }
  const std::vector<ObjectId>& ReadPage(PageId page,
                                        QueryStats* stats) override {
    return inner_->ReadPage(page, stats);
  }
  size_t NumDataPages() const override { return inner_->NumDataPages(); }
  size_t NumObjects() const override { return inner_->NumObjects(); }
  const Vec& ObjectVec(ObjectId id) const override {
    return inner_->ObjectVec(id);
  }
  void ResetIoState() override { inner_->ResetIoState(); }

 private:
  QueryBackend* inner_;
};

// The default (gather) ReadPageBlockChecked must produce the same rows as
// a backend's contiguous-storage override; it carries no tile mirror.
TEST(KernelBlockReadTest, DefaultGatherFallback) {
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.page_size_bytes = 1024;
  auto db = MetricDatabase::Open(MakeUniformDataset(300, 4, 13),
                                 std::make_shared<EuclideanMetric>(), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ForwardingBackend fallback(&(*db)->backend());

  for (PageId page = 0; page < fallback.NumDataPages(); ++page) {
    QueryStats stats;
    PageBlock direct, gathered;
    ASSERT_TRUE(
        (*db)->backend().ReadPageBlockChecked(page, &stats, &direct).ok());
    ASSERT_TRUE(fallback.ReadPageBlockChecked(page, &stats, &gathered).ok());
    ASSERT_EQ(direct.size(), gathered.size());
    EXPECT_EQ(gathered.vecs.tiles, nullptr);
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(direct.ids[i], gathered.ids[i]);
      for (size_t d = 0; d < direct.vecs.dim; ++d) {
        EXPECT_EQ(direct.vecs.row(i)[d], gathered.vecs.row(i)[d]);
      }
    }
  }
}

// PageKernel batched mode vs its scalar-reference mode on one block, no
// avoidance: identical answer sets and identical dist_computations.
TEST(KernelPageKernelTest, BatchedMatchesScalarReference) {
  const size_t dim = 12;
  TestBlockData data(dim, 50, 21);
  std::vector<ObjectId> ids(50);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ObjectId>(i);
  PageBlock block{data.TiledBlock(), ids.data()};

  CountingMetric metric(std::make_shared<EuclideanMetric>());
  TestBlockData queries(dim, 3, 22);

  for (size_t k : {1u, 5u, 60u}) {
    std::vector<AnswerList> batched_lists(3, AnswerList(QueryType::Knn(k)));
    std::vector<AnswerList> scalar_lists(3, AnswerList(QueryType::Knn(k)));
    QueryStats batched_stats, scalar_stats;
    PageKernel kernel;
    for (int mode = 0; mode < 2; ++mode) {
      const bool use_batched = mode == 0;
      auto& lists = use_batched ? batched_lists : scalar_lists;
      QueryStats* stats = use_batched ? &batched_stats : &scalar_stats;
      std::vector<PageKernel::ActiveQuery> active;
      for (size_t qi = 0; qi < 3; ++qi) {
        active.push_back({&queries.rows[qi], &lists[qi]});
      }
      ScopedStatsSink sink(metric, stats);
      kernel.ProcessPage(block, active, metric, /*cache=*/nullptr,
                         /*max_witnesses=*/0, /*pivots=*/nullptr, use_batched,
                         stats);
    }
    EXPECT_EQ(batched_stats.dist_computations, scalar_stats.dist_computations);
    EXPECT_GT(batched_stats.kernel_batches, 0u);
    EXPECT_EQ(scalar_stats.kernel_batches, 0u);
    for (size_t qi = 0; qi < 3; ++qi) {
      ASSERT_EQ(batched_lists[qi].size(), scalar_lists[qi].size());
      for (size_t i = 0; i < batched_lists[qi].size(); ++i) {
        EXPECT_EQ(batched_lists[qi].answers()[i].id,
                  scalar_lists[qi].answers()[i].id);
        EXPECT_EQ(batched_lists[qi].answers()[i].distance,
                  scalar_lists[qi].answers()[i].distance);
      }
    }
  }
}

class KernelEngineEquivalenceTest
    : public ::testing::TestWithParam<BackendCase> {};

// The full engines with the batched kernel vs. the scalar reference mode
// (use_batched_kernel = false, the exact pre-kernel loop): identical
// answer sets and identical paper cost counters, with avoidance armed.
TEST_P(KernelEngineEquivalenceTest, SameAnswersAndCosts) {
  Dataset dataset = MakeGaussianClustersDataset(1200, 8, 6, 0.08, 41);
  auto open = [&](bool batched) {
    DatabaseOptions options;
    options.backend = GetParam().kind;
    options.page_size_bytes = 2048;
    options.multi.use_batched_kernel = batched;
    auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                   options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  };
  auto batched_db = open(true);
  auto scalar_db = open(false);

  Rng rng(51);
  const auto ids = rng.SampleWithoutReplacement(dataset.size(), 24);
  std::vector<Query> queries;
  for (uint64_t id : ids) {
    queries.push_back(
        batched_db->MakeObjectKnnQuery(static_cast<ObjectId>(id), 10));
  }
  auto batched = batched_db->MultipleSimilarityQueryAll(queries);
  auto scalar = scalar_db->MultipleSimilarityQueryAll(queries);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();

  ASSERT_EQ(batched->size(), scalar->size());
  for (size_t i = 0; i < batched->size(); ++i) {
    ASSERT_EQ((*batched)[i].size(), (*scalar)[i].size()) << "query " << i;
    for (size_t j = 0; j < (*batched)[i].size(); ++j) {
      EXPECT_EQ((*batched)[i][j].id, (*scalar)[i][j].id);
      EXPECT_EQ((*batched)[i][j].distance, (*scalar)[i][j].distance);
    }
  }
  const QueryStats& bs = batched_db->stats();
  const QueryStats& ss = scalar_db->stats();
  EXPECT_EQ(bs.dist_computations, ss.dist_computations);
  EXPECT_EQ(bs.triangle_avoided, ss.triangle_avoided);
  EXPECT_EQ(bs.TotalPageReads(), ss.TotalPageReads());
  EXPECT_GT(bs.kernel_batches, 0u);
  EXPECT_EQ(ss.kernel_batches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, KernelEngineEquivalenceTest,
    ::testing::Values(BackendCase{BackendKind::kLinearScan},
                      BackendCase{BackendKind::kVaFile},
                      BackendCase{BackendKind::kXTree},
                      BackendCase{BackendKind::kMTree}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return BackendKindName(info.param.kind);
    });

// Single-query path: the kernelized ExecuteSingleQuery must still agree
// with the brute-force oracle (it runs unarmed batched mode).
TEST(KernelEngineEquivalenceTest, SingleQueryMatchesBruteForce) {
  Dataset dataset = MakeUniformDataset(800, 5, 61);
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                 options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EuclideanMetric metric;
  for (ObjectId id : {0u, 17u, 400u}) {
    const Query q = (*db)->MakeObjectKnnQuery(id, 10);
    auto got = (*db)->SimilarityQuery(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(SameAnswers(*got, testing::BruteForceQuery(dataset, metric, q)));
  }
}

}  // namespace
}  // namespace msq
