// Tests of the batched kNN-graph utilities.

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "mining/knn_graph.h"
#include "tests/test_util.h"

namespace msq {
namespace {

std::unique_ptr<MetricDatabase> OpenDb(const Dataset& dataset,
                                       BackendKind kind =
                                           BackendKind::kLinearScan) {
  DatabaseOptions options;
  options.backend = kind;
  options.page_size_bytes = 2048;
  auto db = MetricDatabase::Open(dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(KnnGraphTest, EdgesMatchBruteForce) {
  Dataset dataset = MakeGaussianClustersDataset(400, 4, 4, 0.05, 1301);
  EuclideanMetric metric;
  auto db = OpenDb(dataset);
  KnnGraphParams params;
  params.k = 6;
  auto graph = BuildKnnGraph(db.get(), params);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_EQ(graph->neighbors.size(), dataset.size());
  for (ObjectId id : {0u, 57u, 399u}) {
    Query q{static_cast<QueryId>(id + 100000), dataset.object(id),
            QueryType::Knn(params.k + 1)};
    AnswerSet expected = testing::BruteForceQuery(dataset, metric, q);
    AnswerSet expected_wo_self;
    for (const Neighbor& nb : expected) {
      if (nb.id != id && expected_wo_self.size() < params.k) {
        expected_wo_self.push_back(nb);
      }
    }
    EXPECT_TRUE(testing::SameAnswers(graph->neighbors[id],
                                     expected_wo_self))
        << id;
  }
}

TEST(KnnGraphTest, EveryObjectHasKNeighbors) {
  Dataset dataset = MakeUniformDataset(300, 3, 1303);
  auto db = OpenDb(dataset);
  KnnGraphParams params;
  params.k = 5;
  auto graph = BuildKnnGraph(db.get(), params);
  ASSERT_TRUE(graph.ok());
  for (const AnswerSet& nbrs : graph->neighbors) {
    EXPECT_EQ(nbrs.size(), 5u);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LE(nbrs[i - 1].distance, nbrs[i].distance);
    }
  }
}

TEST(KnnGraphTest, SingleAndMultipleModesAgree) {
  Dataset dataset = MakeGaussianClustersDataset(350, 4, 3, 0.04, 1305);
  KnnGraphParams params;
  params.k = 4;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = BuildKnnGraph(db_single.get(), params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = BuildKnnGraph(db_multi.get(), params);
  ASSERT_TRUE(multi.ok());
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    EXPECT_TRUE(testing::SameAnswers(single->neighbors[id],
                                     multi->neighbors[id]))
        << id;
  }
  EXPECT_LT(db_multi->stats().TotalPageReads(),
            db_single->stats().TotalPageReads());
}

TEST(KnnGraphTest, MutualEdgeFractionDropsWithDimensionality) {
  // The hubness effect: on uniform data, kNN relations become less
  // symmetric as the dimensionality grows (a few hub objects appear in
  // many kNN lists without reciprocating).
  KnnGraphParams params;
  params.k = 5;
  double low_dim = 0.0, high_dim = 0.0;
  for (size_t dim : {2, 32}) {
    Dataset dataset = MakeUniformDataset(600, dim, 1307);
    auto db = OpenDb(dataset);
    auto graph = BuildKnnGraph(db.get(), params);
    ASSERT_TRUE(graph.ok());
    const double fraction = graph->MutualEdgeFraction();
    EXPECT_GT(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
    (dim == 2 ? low_dim : high_dim) = fraction;
  }
  EXPECT_GT(low_dim, high_dim + 0.1);
}

TEST(KDistanceTest, SortedDescendingAndSeparatesDensityRegimes) {
  // Clustered data: most objects have a tiny k-dist (inside a cluster),
  // and the list is sorted descending — the classic Eps-selection plot.
  Dataset dataset = MakeGaussianClustersDataset(500, 4, 5, 0.02, 1309);
  auto db = OpenDb(dataset);
  KnnGraphParams params;
  params.k = 4;
  auto k_dist = KDistanceList(db.get(), params);
  ASSERT_TRUE(k_dist.ok());
  ASSERT_EQ(k_dist->size(), dataset.size());
  for (size_t i = 1; i < k_dist->size(); ++i) {
    EXPECT_GE((*k_dist)[i - 1], (*k_dist)[i]);
  }
  // The median k-dist (dense regions) is far below the max (outliers).
  EXPECT_LT((*k_dist)[k_dist->size() / 2], 0.5 * (*k_dist)[0]);
}

TEST(KnnGraphTest, RejectsBadParameters) {
  Dataset dataset = MakeUniformDataset(100, 3, 1311);
  auto db = OpenDb(dataset);
  KnnGraphParams params;
  params.k = 0;
  EXPECT_TRUE(BuildKnnGraph(db.get(), params).status().IsInvalidArgument());
  EXPECT_TRUE(KDistanceList(db.get(), params).status().IsInvalidArgument());
}

}  // namespace
}  // namespace msq
