// Tests of the open-loop load layer: statistical sanity of the seeded
// workload models (Poisson gaps, Zipf skew, tenant mix) and a short
// end-to-end generator run against a real scheduler — every submitted
// query must be accounted for exactly once across ok/shed/rejected/failed
// and every OK completion must contribute a latency sample.

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "load/generator.h"
#include "load/workload.h"
#include "parallel/thread_pool.h"
#include "service/batch_scheduler.h"

namespace msq {
namespace {

// ---------------------------------------------------------------------
// Workload models
// ---------------------------------------------------------------------

TEST(LoadWorkloadTest, PoissonGapsHaveTheConfiguredMean) {
  load::PoissonArrivals arrivals(1000.0, 7);  // mean gap 1 ms
  constexpr int kSamples = 20000;
  double total_nanos = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const auto gap = arrivals.NextGap();
    ASSERT_GE(gap.count(), 0);
    total_nanos += static_cast<double>(gap.count());
  }
  const double mean_micros = total_nanos / kSamples / 1e3;
  // Exponential with mean 1000 us; 20k samples put the sample mean well
  // within 5%.
  EXPECT_NEAR(mean_micros, 1000.0, 50.0);
}

TEST(LoadWorkloadTest, ZeroRateProducesZeroGaps) {
  load::PoissonArrivals arrivals(0.0, 7);
  EXPECT_EQ(arrivals.NextGap().count(), 0);
}

TEST(LoadWorkloadTest, ZipfIsSkewedAndCoversTheIdSpace) {
  constexpr size_t kN = 1000;
  load::ZipfSampler zipf(kN, 1.0, 11);
  Rng rng(13);
  std::vector<uint64_t> counts(kN, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t id = zipf.Sample(rng);
    ASSERT_LT(id, kN);
    ++counts[id];
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  // Zipf(1.0) over 1000 ranks: the top rank holds ~1/H(1000) ~ 13% of the
  // mass and the top 10 ranks ~39%. Loose bounds to stay seed-robust.
  EXPECT_GT(counts[0], kSamples / 20);  // >= 5%
  const uint64_t top10 =
      std::accumulate(counts.begin(), counts.begin() + 10, uint64_t{0});
  EXPECT_GT(top10, kSamples / 4);
  // The shuffle must spread ranks over ids, not leave id 0 the hottest:
  // sampling must still be a permutation of [0, n).
  load::ZipfSampler uniform(kN, 0.0, 11);
  std::vector<bool> seen(kN, false);
  Rng rng2(17);
  for (int i = 0; i < kSamples; ++i) seen[uniform.Sample(rng2)] = true;
  EXPECT_GT(std::count(seen.begin(), seen.end(), true),
            static_cast<long>(kN * 9 / 10));
}

TEST(LoadWorkloadTest, TenantMixFollowsWeights) {
  load::TenantMix mix({{"a", 3.0, 10, 0.9}, {"b", 1.0, 20, 0.9}});
  ASSERT_EQ(mix.size(), 2u);
  Rng rng(19);
  int a = 0;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    if (mix.PickIndex(rng) == 0) ++a;
  }
  EXPECT_NEAR(static_cast<double>(a) / kSamples, 0.75, 0.02);
}

TEST(LoadWorkloadTest, EmptyAndZeroWeightMixesAreSafe) {
  load::TenantMix empty({});
  EXPECT_EQ(empty.size(), 1u);  // one default tenant
  load::TenantMix zeros({{"a", 0.0, 10, 0.9}, {"b", 0.0, 20, 0.9}});
  Rng rng(23);
  int b = 0;
  for (int i = 0; i < 10000; ++i) {
    if (zeros.PickIndex(rng) == 1) ++b;
  }
  // All-zero weights degrade to a uniform mix, not "always the last".
  EXPECT_NEAR(static_cast<double>(b) / 10000.0, 0.5, 0.05);
}

// ---------------------------------------------------------------------
// End-to-end generator run
// ---------------------------------------------------------------------

TEST(LoadGeneratorTest, ShortRunAccountsForEverySubmission) {
  Dataset dataset = MakeUniformDataset(400, 4, 1201);
  DatabaseOptions dbopts;
  dbopts.backend = BackendKind::kLinearScan;
  auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                 dbopts);
  ASSERT_TRUE(db.ok());
  ThreadPool pool(2);
  BatchSchedulerOptions sopts;
  sopts.max_batch_size = 16;
  sopts.flush_deadline = std::chrono::milliseconds(1);
  sopts.metrics = nullptr;
  BatchScheduler scheduler(&(*db)->engine(), &pool, sopts);

  load::LoadOptions lopts;
  lopts.target_qps = 500.0;
  lopts.duration = std::chrono::milliseconds(600);
  lopts.num_producers = 2;
  lopts.num_waiters = 2;
  lopts.seed = 5;
  lopts.num_objects = dataset.size();
  lopts.tenants = {{"fast", 0.6, 3, 0.9}, {"deep", 0.4, 8, 0.5}};

  load::LoadGenerator generator(
      &scheduler, lopts,
      [&dataset](const load::TenantSpec& tenant, uint64_t object_id) {
        Query q;
        q.point = dataset.object(
            static_cast<ObjectId>(object_id % dataset.size()));
        q.type = QueryType::Knn(tenant.k);
        return q;
      });
  load::LoadResult result = generator.Run();
  scheduler.Drain();

  EXPECT_GT(result.submitted, 0u);
  EXPECT_EQ(result.submitted,
            result.ok + result.shed + result.rejected + result.failed);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.latencies_micros.size(), result.ok);
  EXPECT_TRUE(std::is_sorted(result.latencies_micros.begin(),
                             result.latencies_micros.end()));
  EXPECT_GT(result.wall_seconds, 0.0);
  // Per-tenant counts fold back to the totals and both tenants got traffic.
  ASSERT_EQ(result.tenants.size(), 2u);
  uint64_t tenant_submitted = 0;
  for (const auto& t : result.tenants) tenant_submitted += t.submitted;
  EXPECT_EQ(tenant_submitted, result.submitted);
  EXPECT_GT(result.tenants[0].submitted, result.tenants[1].submitted);
  EXPECT_GT(result.tenants[1].submitted, 0u);
  // Percentiles are monotone on the sorted latency vector.
  EXPECT_LE(result.LatencyPercentileMicros(50),
            result.LatencyPercentileMicros(99));
  EXPECT_LE(result.LatencyPercentileMicros(99),
            result.LatencyPercentileMicros(99.9));
}

// Two generator runs with the same seed submit the same number of queries
// per tenant (the schedule is deterministic; only timing varies).
TEST(LoadGeneratorTest, SameSeedSameSubmissionCounts) {
  Dataset dataset = MakeUniformDataset(200, 4, 1301);
  DatabaseOptions dbopts;
  dbopts.backend = BackendKind::kLinearScan;
  auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                 dbopts);
  ASSERT_TRUE(db.ok());
  ThreadPool pool(2);

  auto run_once = [&] {
    BatchSchedulerOptions sopts;
    sopts.max_batch_size = 16;
    sopts.flush_deadline = std::chrono::milliseconds(1);
    sopts.metrics = nullptr;
    BatchScheduler scheduler(&(*db)->engine(), &pool, sopts);
    load::LoadOptions lopts;
    lopts.target_qps = 300.0;
    lopts.duration = std::chrono::milliseconds(400);
    lopts.num_producers = 1;  // one producer: the schedule is a pure
    lopts.num_waiters = 1;    // function of the seed
    lopts.seed = 9;
    lopts.num_objects = dataset.size();
    load::LoadGenerator generator(
        &scheduler, lopts,
        [&dataset](const load::TenantSpec& tenant, uint64_t object_id) {
          Query q;
          q.point = dataset.object(
              static_cast<ObjectId>(object_id % dataset.size()));
          q.type = QueryType::Knn(tenant.k);
          return q;
        });
    load::LoadResult r = generator.Run();
    scheduler.Drain();
    return r;
  };
  const load::LoadResult a = run_once();
  const load::LoadResult b = run_once();
  // The arrival schedule is absolute (start + cumulative gaps), so the
  // submitted count can differ by at most the arrivals that straddle the
  // end-of-run cutoff under scheduling noise; with a fixed seed the gap
  // sequence is identical, making the counts equal.
  EXPECT_EQ(a.submitted, b.submitted);
}

}  // namespace
}  // namespace msq