// Cross-backend equivalence of the mining algorithms: every instance must
// produce identical results regardless of the storage organization —
// backends only change costs, never answers.

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "mining/association.h"
#include "mining/dbscan.h"
#include "mining/exploration_sim.h"
#include "mining/knn_classifier.h"
#include "mining/proximity.h"
#include "mining/trend.h"

namespace msq {
namespace {

struct BackendCase {
  BackendKind kind;
  const char* name;
};

std::unique_ptr<MetricDatabase> OpenDb(const Dataset& dataset,
                                       BackendKind kind) {
  DatabaseOptions options;
  options.backend = kind;
  options.page_size_bytes = 2048;
  auto db = MetricDatabase::Open(dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

class MiningBackendTest : public ::testing::TestWithParam<BackendCase> {};

TEST_P(MiningBackendTest, DbscanMatchesScanReference) {
  Dataset dataset = MakeGaussianClustersDataset(700, 4, 5, 0.02, 1101);
  DbscanParams params;
  params.eps = 0.07;
  params.min_pts = 5;
  auto reference_db = OpenDb(dataset, BackendKind::kLinearScan);
  auto reference = RunDbscan(reference_db.get(), params);
  ASSERT_TRUE(reference.ok());
  auto db = OpenDb(dataset, GetParam().kind);
  auto got = RunDbscan(db.get(), params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->cluster_of, reference->cluster_of);
  EXPECT_EQ(got->num_clusters, reference->num_clusters);
}

TEST_P(MiningBackendTest, ClassifierPredictionsMatchScanReference) {
  Dataset dataset = MakeGaussianClustersDataset(800, 5, 6, 0.03, 1103);
  Rng rng(1105);
  std::vector<ObjectId> to_classify;
  for (uint64_t id : rng.SampleWithoutReplacement(dataset.size(), 50)) {
    to_classify.push_back(static_cast<ObjectId>(id));
  }
  KnnClassifierParams params;
  params.k = 5;
  auto reference_db = OpenDb(dataset, BackendKind::kLinearScan);
  auto reference = ClassifyObjects(reference_db.get(), to_classify, params);
  ASSERT_TRUE(reference.ok());
  auto db = OpenDb(dataset, GetParam().kind);
  auto got = ClassifyObjects(db.get(), to_classify, params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->predicted, reference->predicted);
}

TEST_P(MiningBackendTest, ExplorationPathsMatchScanReference) {
  Dataset dataset = MakeImageHistogramDataset(
      {.n = 900, .dim = 16, .num_clusters = 6, .seed = 1107});
  ExplorationSimParams params;
  params.num_users = 3;
  params.k = 5;
  params.num_rounds = 2;
  params.seed = 13;
  auto reference_db = OpenDb(dataset, BackendKind::kLinearScan);
  auto reference = RunExplorationSim(reference_db.get(), params);
  ASSERT_TRUE(reference.ok());
  auto db = OpenDb(dataset, GetParam().kind);
  auto got = RunExplorationSim(db.get(), params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->final_positions, reference->final_positions);
}

TEST_P(MiningBackendTest, AssociationRulesMatchScanReference) {
  Dataset dataset = MakeGaussianClustersDataset(500, 3, 4, 0.04, 1109);
  AssociationParams params;
  params.eps = 0.1;
  params.min_confidence = 0.1;
  params.min_support = 0.01;
  auto reference_db = OpenDb(dataset, BackendKind::kLinearScan);
  auto reference = MineNeighborhoodRules(reference_db.get(), params);
  ASSERT_TRUE(reference.ok());
  auto db = OpenDb(dataset, GetParam().kind);
  auto got = MineNeighborhoodRules(db.get(), params);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), reference->size());
  for (size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i].antecedent_label, (*reference)[i].antecedent_label);
    EXPECT_EQ((*got)[i].consequent_label, (*reference)[i].consequent_label);
    EXPECT_DOUBLE_EQ((*got)[i].support, (*reference)[i].support);
  }
}

TEST_P(MiningBackendTest, ProximityTopObjectsMatchScanReference) {
  Dataset dataset = MakeGaussianClustersDataset(600, 4, 4, 0.03, 1111);
  std::vector<ObjectId> cluster;
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    if (dataset.label(id) == 2) cluster.push_back(id);
  }
  ProximityParams params;
  params.top_k = 12;
  auto reference_db = OpenDb(dataset, BackendKind::kLinearScan);
  auto reference = AnalyzeProximity(reference_db.get(), cluster, params);
  ASSERT_TRUE(reference.ok());
  auto db = OpenDb(dataset, GetParam().kind);
  auto got = AnalyzeProximity(db.get(), cluster, params);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->top_objects.size(), reference->top_objects.size());
  for (size_t i = 0; i < got->top_objects.size(); ++i) {
    EXPECT_EQ(got->top_objects[i].id, reference->top_objects[i].id);
  }
}

TEST_P(MiningBackendTest, TrendFitMatchesScanReference) {
  Dataset dataset = MakeUniformDataset(500, 4, 1113);
  TrendParams params;
  params.attribute_dim = 1;
  params.seed = 3;
  auto reference_db = OpenDb(dataset, BackendKind::kLinearScan);
  auto reference = DetectTrend(reference_db.get(), 10, params);
  ASSERT_TRUE(reference.ok());
  auto db = OpenDb(dataset, GetParam().kind);
  auto got = DetectTrend(db.get(), 10, params);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->slope, reference->slope);
  EXPECT_EQ(got->num_observations, reference->num_observations);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, MiningBackendTest,
    ::testing::Values(BackendCase{BackendKind::kXTree, "xtree"},
                      BackendCase{BackendKind::kMTree, "mtree"},
                      BackendCase{BackendKind::kVaFile, "vafile"}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace msq
