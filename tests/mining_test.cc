// Tests of the mining library: the ExploreNeighborhoods schemes and every
// instance (DBSCAN, kNN classification, exploration, proximity, trend,
// association rules). The central property, asserted throughout, is the
// paper's transformation claim: the multiple-query form computes exactly
// the same result as the single-query form.

#include <algorithm>
#include <deque>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "mining/association.h"
#include "mining/dbscan.h"
#include "mining/exploration_sim.h"
#include "mining/explore.h"
#include "mining/knn_classifier.h"
#include "mining/proximity.h"
#include "mining/trend.h"

namespace msq {
namespace {

std::unique_ptr<MetricDatabase> OpenDb(Dataset dataset,
                                       BackendKind kind = BackendKind::kLinearScan) {
  DatabaseOptions options;
  options.backend = kind;
  options.page_size_bytes = 2048;
  auto db = MetricDatabase::Open(std::move(dataset),
                                 std::make_shared<EuclideanMetric>(), options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// ---------------------------------------------------------------------
// ExploreNeighborhoods scheme
// ---------------------------------------------------------------------

TEST(ExploreTest, VisitsConnectedNeighborhoodExactlyOnce) {
  Dataset dataset = MakeGaussianClustersDataset(500, 4, 3, 0.02, 701);
  auto db = OpenDb(std::move(dataset));
  std::vector<ObjectId> visited;
  ExploreCallbacks callbacks;
  callbacks.proc2 = [&](ObjectId id, const AnswerSet&) {
    visited.push_back(id);
  };
  callbacks.filter = [](ObjectId, const AnswerSet& answers) {
    std::vector<ObjectId> next;
    for (const Neighbor& nb : answers) next.push_back(nb.id);
    return next;
  };
  ExploreOptions options;
  options.query_type = QueryType::Knn(5);
  auto processed = ExploreNeighborhoods(db.get(), {0}, options, callbacks);
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, visited.size());
  std::set<ObjectId> unique(visited.begin(), visited.end());
  EXPECT_EQ(unique.size(), visited.size()) << "no object processed twice";
}

TEST(ExploreTest, SingleAndMultipleFormsVisitSameObjects) {
  Dataset dataset = MakeGaussianClustersDataset(600, 4, 4, 0.03, 703);
  std::vector<std::vector<ObjectId>> visits(2);
  for (int mode = 0; mode < 2; ++mode) {
    auto db = OpenDb(dataset);
    ExploreCallbacks callbacks;
    callbacks.proc2 = [&, mode](ObjectId id, const AnswerSet&) {
      visits[mode].push_back(id);
    };
    callbacks.filter = [](ObjectId, const AnswerSet& answers) {
      std::vector<ObjectId> next;
      for (const Neighbor& nb : answers) next.push_back(nb.id);
      return next;
    };
    ExploreOptions options;
    options.query_type = QueryType::Range(0.08);
    options.use_multiple = (mode == 1);
    options.batch_size = 8;
    ASSERT_TRUE(ExploreNeighborhoods(db.get(), {5}, options, callbacks).ok());
  }
  EXPECT_EQ(visits[0], visits[1]);
}

TEST(ExploreTest, ConditionCheckBoundsTheWalk) {
  Dataset dataset = MakeUniformDataset(400, 4, 705);
  auto db = OpenDb(std::move(dataset));
  size_t steps = 0;
  ExploreCallbacks callbacks;
  callbacks.condition_check = [&](const std::deque<ObjectId>&) {
    return steps < 3;
  };
  callbacks.proc2 = [&](ObjectId, const AnswerSet&) { ++steps; };
  callbacks.filter = [](ObjectId, const AnswerSet& answers) {
    std::vector<ObjectId> next;
    for (const Neighbor& nb : answers) next.push_back(nb.id);
    return next;
  };
  ExploreOptions options;
  options.query_type = QueryType::Knn(4);
  auto processed = ExploreNeighborhoods(db.get(), {0}, options, callbacks);
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, 3u);
}

TEST(ExploreTest, Proc1RunsBeforeEachQuery) {
  Dataset dataset = MakeUniformDataset(200, 3, 707);
  auto db = OpenDb(std::move(dataset));
  std::vector<ObjectId> pre, post;
  ExploreCallbacks callbacks;
  callbacks.proc1 = [&](ObjectId id) { pre.push_back(id); };
  callbacks.proc2 = [&](ObjectId id, const AnswerSet&) {
    post.push_back(id);
  };
  ExploreOptions options;
  options.query_type = QueryType::Knn(3);
  ASSERT_TRUE(ExploreNeighborhoods(db.get(), {1, 2, 3}, options, callbacks)
                  .ok());
  EXPECT_EQ(pre, post);
  EXPECT_EQ(pre, (std::vector<ObjectId>{1, 2, 3}));
}

TEST(ExploreTest, RejectsBadArguments) {
  Dataset dataset = MakeUniformDataset(100, 3, 709);
  auto db = OpenDb(std::move(dataset));
  ExploreOptions options;
  options.batch_size = 0;
  EXPECT_TRUE(ExploreNeighborhoods(db.get(), {0}, options, {})
                  .status()
                  .IsInvalidArgument());
  options.batch_size = 4;
  EXPECT_TRUE(ExploreNeighborhoods(db.get(), {999999}, options, {})
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------
// DBSCAN
// ---------------------------------------------------------------------

// Brute-force reference DBSCAN with the same processing order.
DbscanResult ReferenceDbscan(const Dataset& ds, const Metric& metric,
                             double eps, size_t min_pts) {
  constexpr int32_t kUnclassified = -2;
  const size_t n = ds.size();
  DbscanResult result;
  result.cluster_of.assign(n, kUnclassified);
  auto neighbors = [&](ObjectId o) {
    std::vector<ObjectId> out;
    for (ObjectId i = 0; i < n; ++i) {
      if (metric.Distance(ds.object(o), ds.object(i)) <= eps) {
        out.push_back(i);
      }
    }
    return out;
  };
  int32_t cluster = -1;
  for (ObjectId o = 0; o < n; ++o) {
    if (result.cluster_of[o] != kUnclassified) continue;
    const auto nb = neighbors(o);
    if (nb.size() < min_pts) {
      result.cluster_of[o] = kDbscanNoise;
      continue;
    }
    ++cluster;
    result.cluster_of[o] = cluster;
    std::deque<ObjectId> seeds;
    for (ObjectId s : nb) {
      if (result.cluster_of[s] == kUnclassified) {
        result.cluster_of[s] = cluster;
        seeds.push_back(s);
      } else if (result.cluster_of[s] == kDbscanNoise) {
        result.cluster_of[s] = cluster;
      }
    }
    while (!seeds.empty()) {
      const ObjectId cur = seeds.front();
      seeds.pop_front();
      const auto cur_nb = neighbors(cur);
      if (cur_nb.size() < min_pts) continue;
      for (ObjectId s : cur_nb) {
        if (result.cluster_of[s] == kUnclassified) {
          result.cluster_of[s] = cluster;
          seeds.push_back(s);
        } else if (result.cluster_of[s] == kDbscanNoise) {
          result.cluster_of[s] = cluster;
        }
      }
    }
  }
  result.num_clusters = static_cast<size_t>(cluster + 1);
  return result;
}

TEST(DbscanTest, MatchesReferenceImplementation) {
  Dataset dataset = MakeGaussianClustersDataset(600, 3, 4, 0.02, 711);
  EuclideanMetric metric;
  const DbscanResult expected = ReferenceDbscan(dataset, metric, 0.06, 5);
  auto db = OpenDb(dataset);
  DbscanParams params;
  params.eps = 0.06;
  params.min_pts = 5;
  auto got = RunDbscan(db.get(), params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->num_clusters, expected.num_clusters);
  EXPECT_EQ(got->cluster_of, expected.cluster_of);
}

TEST(DbscanTest, SingleAndMultipleModesProduceIdenticalClusterings) {
  Dataset dataset = MakeGaussianClustersDataset(800, 4, 5, 0.02, 713);
  DbscanParams params;
  params.eps = 0.08;
  params.min_pts = 4;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = RunDbscan(db_single.get(), params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = RunDbscan(db_multi.get(), params);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(single->cluster_of, multi->cluster_of);
  EXPECT_EQ(single->num_clusters, multi->num_clusters);
  // And batching must be cheaper in page reads.
  EXPECT_LT(db_multi->stats().TotalPageReads(),
            db_single->stats().TotalPageReads());
}

TEST(DbscanTest, RecoverWellSeparatedClusters) {
  Dataset dataset = MakeGaussianClustersDataset(500, 3, 3, 0.01, 715);
  auto db = OpenDb(dataset);
  DbscanParams params;
  params.eps = 0.05;
  params.min_pts = 4;
  auto got = RunDbscan(db.get(), params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->num_clusters, 3u);
  // Clusters must align with the generator labels (up to renaming).
  std::map<int32_t, std::set<int32_t>> label_to_clusters;
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    if (got->cluster_of[id] != kDbscanNoise) {
      label_to_clusters[dataset.label(id)].insert(got->cluster_of[id]);
    }
  }
  for (const auto& [label, clusters] : label_to_clusters) {
    EXPECT_EQ(clusters.size(), 1u) << "label " << label << " split";
  }
}

TEST(DbscanTest, AllNoiseWhenEpsTiny) {
  Dataset dataset = MakeUniformDataset(300, 5, 717);
  auto db = OpenDb(std::move(dataset));
  DbscanParams params;
  params.eps = 1e-6;
  params.min_pts = 3;
  auto got = RunDbscan(db.get(), params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->num_clusters, 0u);
  for (int32_t c : got->cluster_of) EXPECT_EQ(c, kDbscanNoise);
}

TEST(DbscanTest, OneClusterWhenEpsHuge) {
  Dataset dataset = MakeUniformDataset(300, 5, 719);
  auto db = OpenDb(std::move(dataset));
  DbscanParams params;
  params.eps = 10.0;
  params.min_pts = 3;
  auto got = RunDbscan(db.get(), params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->num_clusters, 1u);
}

TEST(DbscanTest, WorksOnXTreeBackend) {
  Dataset dataset = MakeGaussianClustersDataset(600, 4, 4, 0.02, 721);
  EuclideanMetric metric;
  const DbscanResult expected = ReferenceDbscan(dataset, metric, 0.07, 5);
  auto db = OpenDb(dataset, BackendKind::kXTree);
  DbscanParams params;
  params.eps = 0.07;
  params.min_pts = 5;
  auto got = RunDbscan(db.get(), params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->cluster_of, expected.cluster_of);
}

TEST(DbscanTest, RejectsBadParameters) {
  Dataset dataset = MakeUniformDataset(100, 3, 723);
  auto db = OpenDb(std::move(dataset));
  DbscanParams params;
  params.eps = 0.0;
  EXPECT_TRUE(RunDbscan(db.get(), params).status().IsInvalidArgument());
  params.eps = 0.1;
  params.min_pts = 0;
  EXPECT_TRUE(RunDbscan(db.get(), params).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// kNN classification
// ---------------------------------------------------------------------

TEST(KnnClassifierTest, HighAccuracyOnSeparatedClusters) {
  Dataset dataset = MakeGaussianClustersDataset(1000, 6, 5, 0.02, 725);
  auto db = OpenDb(std::move(dataset));
  Rng rng(727);
  std::vector<ObjectId> to_classify;
  for (uint64_t id : rng.SampleWithoutReplacement(1000, 100)) {
    to_classify.push_back(static_cast<ObjectId>(id));
  }
  KnnClassifierParams params;
  params.k = 5;
  auto got = ClassifyObjects(db.get(), to_classify, params);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->accuracy, 0.95);
}

TEST(KnnClassifierTest, SingleAndMultipleModesAgree) {
  Dataset dataset = MakeGaussianClustersDataset(800, 5, 6, 0.03, 729);
  Rng rng(731);
  std::vector<ObjectId> to_classify;
  for (uint64_t id : rng.SampleWithoutReplacement(800, 60)) {
    to_classify.push_back(static_cast<ObjectId>(id));
  }
  KnnClassifierParams params;
  params.k = 7;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = ClassifyObjects(db_single.get(), to_classify, params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = ClassifyObjects(db_multi.get(), to_classify, params);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(single->predicted, multi->predicted);
  EXPECT_LT(db_multi->stats().TotalPageReads(),
            db_single->stats().TotalPageReads());
}

TEST(KnnClassifierTest, RequiresLabels) {
  Dataset dataset = MakeUniformDataset(100, 4, 733);  // unlabeled
  auto db = OpenDb(std::move(dataset));
  EXPECT_TRUE(ClassifyObjects(db.get(), {1, 2}, {})
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Exploration simulation
// ---------------------------------------------------------------------

TEST(ExplorationSimTest, SingleAndMultipleVisitSamePositions) {
  Dataset dataset = MakeImageHistogramDataset(
      {.n = 1500, .dim = 32, .num_clusters = 8, .seed = 735});
  ExplorationSimParams params;
  params.num_users = 4;
  params.k = 6;
  params.num_rounds = 2;
  params.seed = 99;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = RunExplorationSim(db_single.get(), params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = RunExplorationSim(db_multi.get(), params);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(single->final_positions, multi->final_positions);
  EXPECT_EQ(single->queries_issued, multi->queries_issued);
  EXPECT_LE(db_multi->stats().TotalPageReads(),
            db_single->stats().TotalPageReads());
}

TEST(ExplorationSimTest, QueryCountMatchesRounds) {
  Dataset dataset = MakeUniformDataset(800, 8, 737);
  auto db = OpenDb(std::move(dataset));
  ExplorationSimParams params;
  params.num_users = 3;
  params.k = 5;
  params.num_rounds = 2;
  auto got = RunExplorationSim(db.get(), params);
  ASSERT_TRUE(got.ok());
  // Round 0: c queries; rounds 1..R: c*k each.
  EXPECT_EQ(got->queries_issued, 3u + 2u * 3u * 5u);
  EXPECT_EQ(got->final_positions.size(), 3u);
}

TEST(ExplorationSimTest, StreamGeneratorMatchesQueryCount) {
  Dataset dataset = MakeUniformDataset(700, 8, 739);
  auto db = OpenDb(std::move(dataset));
  ExplorationSimParams params;
  params.num_users = 2;
  params.k = 4;
  params.num_rounds = 2;
  auto stream = GenerateExplorationQueryStream(db.get(), params);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 2u + 2u * 2u * 4u);
}

// ---------------------------------------------------------------------
// Proximity analysis
// ---------------------------------------------------------------------

TEST(ProximityTest, FindsNearestForeignObjects) {
  Dataset dataset = MakeGaussianClustersDataset(600, 4, 3, 0.02, 741);
  auto db = OpenDb(dataset);
  // Cluster = all objects with generator label 0.
  std::vector<ObjectId> cluster;
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    if (dataset.label(id) == 0) cluster.push_back(id);
  }
  ProximityParams params;
  params.top_k = 15;
  auto got = AnalyzeProximity(db.get(), cluster, params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->top_objects.size(), 15u);
  // No cluster member may appear among the top objects.
  std::set<ObjectId> members(cluster.begin(), cluster.end());
  for (const Neighbor& nb : got->top_objects) {
    EXPECT_EQ(members.count(nb.id), 0u);
  }
  // Distances must be ascending.
  for (size_t i = 1; i < got->top_objects.size(); ++i) {
    EXPECT_LE(got->top_objects[i - 1].distance,
              got->top_objects[i].distance);
  }
  // The most common label among near objects exists.
  ASSERT_FALSE(got->common_labels.empty());
}

TEST(ProximityTest, SingleAndMultipleModesAgree) {
  Dataset dataset = MakeGaussianClustersDataset(500, 4, 4, 0.03, 743);
  std::vector<ObjectId> cluster;
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    if (dataset.label(id) == 1) cluster.push_back(id);
  }
  ProximityParams params;
  params.top_k = 10;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = AnalyzeProximity(db_single.get(), cluster, params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = AnalyzeProximity(db_multi.get(), cluster, params);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(single->top_objects.size(), multi->top_objects.size());
  for (size_t i = 0; i < single->top_objects.size(); ++i) {
    EXPECT_EQ(single->top_objects[i].id, multi->top_objects[i].id);
  }
}

TEST(ProximityTest, RejectsEmptyCluster) {
  Dataset dataset = MakeUniformDataset(100, 3, 745);
  auto db = OpenDb(std::move(dataset));
  EXPECT_TRUE(
      AnalyzeProximity(db.get(), {}, {}).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Trend detection
// ---------------------------------------------------------------------

TEST(TrendTest, DetectsPlantedLinearTrend) {
  // Attribute 0 grows linearly with the distance from the origin corner;
  // the detected slope must be positive with a decent fit.
  Dataset ds;
  Rng rng(747);
  for (int i = 0; i < 800; ++i) {
    Vec v(4);
    for (size_t d = 1; d < 4; ++d) {
      v[d] = static_cast<Scalar>(rng.NextDouble());
    }
    const double dist_proxy = VecNorm({v[1], v[2], v[3]});
    v[0] = static_cast<Scalar>(2.0 * dist_proxy +
                               0.05 * rng.NextGaussian());
    ASSERT_TRUE(ds.Append(std::move(v)).ok());
  }
  // Start near the origin of dims 1..3.
  ObjectId start = 0;
  double best = 1e9;
  for (ObjectId id = 0; id < ds.size(); ++id) {
    const double d = VecNorm({ds.object(id)[1], ds.object(id)[2],
                              ds.object(id)[3]});
    if (d < best) {
      best = d;
      start = id;
    }
  }
  auto db = OpenDb(std::move(ds));
  TrendParams params;
  params.attribute_dim = 0;
  params.num_paths = 10;
  params.path_length = 10;
  auto got = DetectTrend(db.get(), start, params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GT(got->num_observations, 10u);
  EXPECT_GT(got->slope, 0.5);
  EXPECT_GT(got->r_squared, 0.3);
}

TEST(TrendTest, NoTrendInIndependentAttribute) {
  Dataset dataset = MakeUniformDataset(600, 5, 749);
  auto db = OpenDb(std::move(dataset));
  TrendParams params;
  params.attribute_dim = 4;
  // Distances are driven by all dims incl. 4; use small neighborhoods so
  // the correlation stays weak.
  auto got = DetectTrend(db.get(), 0, params);
  ASSERT_TRUE(got.ok());
  EXPECT_LT(got->r_squared, 0.5);
}

TEST(TrendTest, SingleAndMultipleModesAgree) {
  Dataset dataset = MakeUniformDataset(500, 4, 751);
  TrendParams params;
  params.attribute_dim = 1;
  params.seed = 7;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = DetectTrend(db_single.get(), 3, params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = DetectTrend(db_multi.get(), 3, params);
  ASSERT_TRUE(multi.ok());
  EXPECT_DOUBLE_EQ(single->slope, multi->slope);
  EXPECT_EQ(single->num_observations, multi->num_observations);
}

TEST(TrendTest, RejectsBadArguments) {
  Dataset dataset = MakeUniformDataset(100, 3, 753);
  auto db = OpenDb(std::move(dataset));
  TrendParams params;
  params.attribute_dim = 99;
  EXPECT_TRUE(DetectTrend(db.get(), 0, params).status().IsInvalidArgument());
  params.attribute_dim = 0;
  EXPECT_TRUE(
      DetectTrend(db.get(), 999999, params).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Association rules
// ---------------------------------------------------------------------

TEST(AssociationTest, FindsPlantedRule) {
  // Type 1 objects are planted right next to type 0 objects; type 2 is far
  // away. Rule "0 close to 1" must emerge with high confidence.
  Dataset ds;
  Rng rng(755);
  for (int i = 0; i < 150; ++i) {
    Vec a{static_cast<Scalar>(rng.NextDouble(0.0, 0.2)),
          static_cast<Scalar>(rng.NextDouble(0.0, 0.2))};
    Vec b = a;
    b[0] += 0.01f;
    ASSERT_TRUE(ds.Append(std::move(a), 0).ok());
    ASSERT_TRUE(ds.Append(std::move(b), 1).ok());
    ASSERT_TRUE(ds.Append({static_cast<Scalar>(rng.NextDouble(5.0, 6.0)),
                           static_cast<Scalar>(rng.NextDouble(5.0, 6.0))},
                          2)
                    .ok());
  }
  auto db = OpenDb(std::move(ds));
  AssociationParams params;
  params.eps = 0.05;
  params.min_confidence = 0.8;
  params.min_support = 0.05;
  auto got = MineNeighborhoodRules(db.get(), params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  bool found = false;
  for (const AssociationRule& rule : *got) {
    if (rule.antecedent_label == 0 && rule.consequent_label == 1) {
      found = true;
      EXPECT_GE(rule.confidence, 0.8);
    }
    // Type 2 must never be close to 0 or 1.
    EXPECT_FALSE(rule.antecedent_label == 2 && rule.consequent_label != 2);
  }
  EXPECT_TRUE(found);
}

TEST(AssociationTest, SingleAndMultipleModesAgree) {
  Dataset dataset = MakeGaussianClustersDataset(400, 3, 4, 0.05, 757);
  AssociationParams params;
  params.eps = 0.1;
  params.min_confidence = 0.1;
  params.min_support = 0.01;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = MineNeighborhoodRules(db_single.get(), params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = MineNeighborhoodRules(db_multi.get(), params);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(single->size(), multi->size());
  for (size_t i = 0; i < single->size(); ++i) {
    EXPECT_EQ((*single)[i].antecedent_label, (*multi)[i].antecedent_label);
    EXPECT_EQ((*single)[i].consequent_label, (*multi)[i].consequent_label);
    EXPECT_DOUBLE_EQ((*single)[i].confidence, (*multi)[i].confidence);
  }
}

TEST(AssociationTest, RequiresLabels) {
  Dataset dataset = MakeUniformDataset(100, 3, 759);
  auto db = OpenDb(std::move(dataset));
  AssociationParams params;
  EXPECT_TRUE(
      MineNeighborhoodRules(db.get(), params).status().IsInvalidArgument());
}

}  // namespace
}  // namespace msq
