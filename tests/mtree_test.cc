// Tests of the M-tree: covering-radius/parent-distance invariants across
// promotion and partition policies, query correctness (including general
// metrics with no vector-space structure), and search accounting.

#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/single_query.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "dist/counting_metric.h"
#include "dist/edit_distance.h"
#include "mtree/mtree.h"
#include "tests/test_util.h"

namespace msq {
namespace {

std::shared_ptr<const Dataset> SharedDataset(Dataset ds) {
  return std::make_shared<Dataset>(std::move(ds));
}

struct PolicyCase {
  MTreeOptions::Promotion promotion;
  MTreeOptions::Partition partition;
  const char* name;
};

class MTreePolicyTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(MTreePolicyTest, InvariantsHoldAfterBuild) {
  auto dataset = SharedDataset(MakeGaussianClustersDataset(1500, 5, 6, 0.05,
                                                           501));
  auto metric = std::make_shared<EuclideanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 1024;
  options.promotion = GetParam().promotion;
  options.partition = GetParam().partition;
  auto tree = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE((*tree)->CheckInvariants().ok())
      << (*tree)->CheckInvariants().ToString();
  const MTreeShape shape = (*tree)->Shape();
  EXPECT_GT(shape.num_leaves, 1u);
  EXPECT_GT(shape.height, 1u);
}

TEST_P(MTreePolicyTest, KnnMatchesBruteForce) {
  Dataset raw = MakeGaussianClustersDataset(1000, 5, 5, 0.05, 503);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 1024;
  options.promotion = GetParam().promotion;
  options.partition = GetParam().partition;
  auto tree = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  CountingMetric counted(metric);
  Rng rng(505);
  for (int trial = 0; trial < 15; ++trial) {
    Vec point(5);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    Query q{static_cast<QueryId>(7000 + trial), point, QueryType::Knn(7)};
    auto got = ExecuteSingleQuery(tree->get(), counted, q, nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(testing::SameAnswers(
        *got, testing::BruteForceQuery(*dataset, *metric, q)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MTreePolicyTest,
    ::testing::Values(
        PolicyCase{MTreeOptions::Promotion::kSampledMinMaxRadius,
                   MTreeOptions::Partition::kGeneralizedHyperplane,
                   "mmrad_gh"},
        PolicyCase{MTreeOptions::Promotion::kSampledMinMaxRadius,
                   MTreeOptions::Partition::kBalanced, "mmrad_balanced"},
        PolicyCase{MTreeOptions::Promotion::kMaxLowerBound,
                   MTreeOptions::Partition::kGeneralizedHyperplane,
                   "mlb_gh"},
        PolicyCase{MTreeOptions::Promotion::kRandom,
                   MTreeOptions::Partition::kGeneralizedHyperplane,
                   "random_gh"}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return info.param.name;
    });

TEST(MTreeTest, RangeQueriesMatchBruteForceOnManhattan) {
  Dataset raw = MakeUniformDataset(900, 4, 507);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<ManhattanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  CountingMetric counted(metric);
  Rng rng(509);
  for (int trial = 0; trial < 15; ++trial) {
    Vec point(4);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    Query q{static_cast<QueryId>(8000 + trial), point,
            QueryType::Range(rng.NextDouble(0.1, 0.6))};
    auto got = ExecuteSingleQuery(tree->get(), counted, q, nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(testing::SameAnswers(
        *got, testing::BruteForceQuery(*dataset, *metric, q)));
  }
}

TEST(MTreeTest, WorksWithEditDistance) {
  // The M-tree is the index for general metric data (web sessions, Sec. 2)
  // where no vector-space MINDIST exists.
  Dataset raw = MakeSessionDataset(400, 6, 30, 12, 511);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EditDistanceMetric>();
  MTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE((*tree)->CheckInvariants().ok())
      << (*tree)->CheckInvariants().ToString();
  CountingMetric counted(metric);
  for (ObjectId probe : {0u, 57u, 399u}) {
    Query q{static_cast<QueryId>(probe), dataset->object(probe),
            QueryType::Knn(5)};
    auto got = ExecuteSingleQuery(tree->get(), counted, q, nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(testing::SameAnswers(
        *got, testing::BruteForceQuery(*dataset, *metric, q)));
    EXPECT_EQ((*got)[0].id, probe);  // identity: itself at distance 0
  }
}

TEST(MTreeTest, SearchChargesRoutingDistances) {
  // Clustered data: the M-tree has real selectivity, so the total charged
  // distances (routing objects + visited leaf objects) stay well below n.
  Dataset raw = MakeGaussianClustersDataset(2000, 6, 10, 0.03, 513);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 2048;
  auto tree = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  CountingMetric counted(metric);
  QueryStats stats;
  Query q{9100, dataset->object(42), QueryType::Knn(5)};
  auto got = ExecuteSingleQuery(tree->get(), counted, q, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(stats.dist_computations, 0u);
  EXPECT_LT(stats.dist_computations, dataset->size());
}

TEST(MTreeTest, ParentDistancePruningSavesDistanceComputations) {
  // Low-dimensional data gives the cleanest geometry for the stored
  // parent distances: for a query near one end of a 1-d value range,
  // sibling subtrees concentrated around an expanded node's routing
  // object are provably out of range without any distance computation.
  Dataset raw = MakeUniformDataset(3000, 1, 515);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 512;
  auto tree = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  CountingMetric counted(metric);
  QueryStats stats;
  for (ObjectId probe = 0; probe < 20; ++probe) {
    Query q{static_cast<QueryId>(9200 + probe), dataset->object(probe * 7),
            QueryType::Range(0.02)};
    ASSERT_TRUE(ExecuteSingleQuery(tree->get(), counted, q, &stats).ok());
  }
  EXPECT_GT(stats.triangle_tries, 0u);
  EXPECT_GT(stats.triangle_avoided, 0u);
}

TEST(MTreeTest, PageMinDistLowerBoundsObjectDistances) {
  Dataset raw = MakeUniformDataset(1200, 5, 517);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  Query q{9300, Vec(5, 0.4f), QueryType::Knn(3)};
  for (PageId p = 0; p < (*tree)->NumDataPages(); ++p) {
    const double lb = (*tree)->PageMinDist(p, q, nullptr);
    for (ObjectId id : (*tree)->ReadPage(p, nullptr)) {
      EXPECT_LE(lb, metric->Distance(q.point, dataset->object(id)) + 1e-9);
    }
  }
}

TEST(MTreeTest, PageMinDistChargesOneDistance) {
  Dataset raw = MakeUniformDataset(800, 5, 519);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  QueryStats stats;
  Query q{9400, Vec(5, 0.4f), QueryType::Knn(3)};
  (*tree)->PageMinDist(0, q, &stats);
  EXPECT_EQ(stats.dist_computations, 1u);
}

TEST(MTreeTest, RejectsEmptyDataset) {
  auto dataset = std::make_shared<Dataset>();
  auto metric = std::make_shared<EuclideanMetric>();
  EXPECT_TRUE(
      MTreeBackend::Build(dataset, metric, {}).status().IsInvalidArgument());
}

TEST(MTreeTest, SmallDatasetSingleLeafWorks) {
  Dataset raw = MakeUniformDataset(5, 3, 521);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  auto tree = MTreeBackend::Build(dataset, metric, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
  CountingMetric counted(metric);
  Query q{9500, dataset->object(2), QueryType::Knn(2)};
  auto got = ExecuteSingleQuery(tree->get(), counted, q, nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0].id, 2u);
}

}  // namespace
}  // namespace msq
