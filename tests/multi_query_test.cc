// Tests for the multiple similarity query engine (Definition 4, Figure 4):
// result equivalence with single queries on every backend, the
// completeness guarantee for the primary query, incremental buffering,
// soundness of the triangle-inequality avoidance, and the cost-saving
// properties the paper claims.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "core/distance_matrix.h"
#include "core/avoidance.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

std::vector<Query> RandomObjectKnnBatch(MetricDatabase* db, size_t m, size_t k,
                                        uint64_t seed) {
  Rng rng(seed);
  const auto ids = rng.SampleWithoutReplacement(db->dataset().size(), m);
  std::vector<Query> queries;
  queries.reserve(m);
  for (uint64_t id : ids) {
    queries.push_back(db->MakeObjectKnnQuery(static_cast<ObjectId>(id), k));
  }
  return queries;
}

struct BackendCase {
  BackendKind kind;
  const char* name;
};

class MultiQueryBackendTest : public ::testing::TestWithParam<BackendCase> {
 protected:
  std::unique_ptr<MetricDatabase> OpenDb(Dataset dataset,
                                         size_t page_size = 2048) {
    DatabaseOptions options;
    options.backend = GetParam().kind;
    options.page_size_bytes = page_size;
    auto db = MetricDatabase::Open(std::move(dataset),
                                   std::make_shared<EuclideanMetric>(),
                                   options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }
};

TEST_P(MultiQueryBackendTest, ExecuteAllMatchesSingleQueries) {
  Dataset dataset = MakeGaussianClustersDataset(1500, 6, 8, 0.05, 301);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  const auto queries = RandomObjectKnnBatch(db.get(), 25, 10, 71);
  auto all = db->MultipleSimilarityQueryAll(queries);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const AnswerSet expected =
        BruteForceQuery(db->dataset(), metric, queries[i]);
    EXPECT_TRUE(SameAnswers((*all)[i], expected)) << "query " << i;
  }
}

TEST_P(MultiQueryBackendTest, ExecuteAllMatchesForRangeQueries) {
  Dataset dataset = MakeGaussianClustersDataset(1200, 5, 6, 0.05, 303);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  Rng rng(73);
  std::vector<Query> queries;
  const auto ids = rng.SampleWithoutReplacement(db->dataset().size(), 20);
  for (uint64_t id : ids) {
    queries.push_back(db->MakeObjectRangeQuery(static_cast<ObjectId>(id),
                                               rng.NextDouble(0.05, 0.25)));
  }
  auto all = db->MultipleSimilarityQueryAll(queries);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    const AnswerSet expected =
        BruteForceQuery(db->dataset(), metric, queries[i]);
    EXPECT_TRUE(SameAnswers((*all)[i], expected)) << "query " << i;
  }
}

TEST_P(MultiQueryBackendTest, MixedQueryTypesInOneBatch) {
  Dataset dataset = MakeGaussianClustersDataset(900, 5, 6, 0.05, 305);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  std::vector<Query> queries;
  queries.push_back(db->MakeObjectKnnQuery(10, 7));
  queries.push_back(db->MakeObjectRangeQuery(20, 0.2));
  queries.push_back(db->MakeObjectKnnQuery(30, 3));
  queries.push_back(db->MakeObjectRangeQuery(40, 0.1));
  auto all = db->MultipleSimilarityQueryAll(queries);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    const AnswerSet expected =
        BruteForceQuery(db->dataset(), metric, queries[i]);
    EXPECT_TRUE(SameAnswers((*all)[i], expected)) << "query " << i;
  }
}

TEST_P(MultiQueryBackendTest, FirstQueryIsCompleteAfterOneCall) {
  // Definition 4 requirement 1: A_1 == similarity_query(Q_1, T_1).
  Dataset dataset = MakeGaussianClustersDataset(1000, 5, 6, 0.05, 307);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  const auto queries = RandomObjectKnnBatch(db.get(), 15, 8, 77);
  auto result = db->MultipleSimilarityQuery(queries);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AnswerSet expected =
      BruteForceQuery(db->dataset(), metric, queries[0]);
  EXPECT_TRUE(SameAnswers(result->answers[0], expected));
}

TEST_P(MultiQueryBackendTest, PartialAnswersAreSubsetsOfTrueAnswers) {
  // Definition 4 requirement 2: A_i subseteq similarity_query(Q_i, T_i).
  Dataset dataset = MakeGaussianClustersDataset(1000, 5, 6, 0.05, 309);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  Rng rng(79);
  std::vector<Query> queries;
  const auto ids = rng.SampleWithoutReplacement(db->dataset().size(), 12);
  for (uint64_t id : ids) {
    queries.push_back(db->MakeObjectRangeQuery(static_cast<ObjectId>(id),
                                               0.2));
  }
  auto result = db->MultipleSimilarityQuery(queries);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < queries.size(); ++i) {
    const AnswerSet expected =
        BruteForceQuery(db->dataset(), metric, queries[i]);
    // Every partial answer must appear in the complete answer set with the
    // same distance.
    for (const Neighbor& nb : result->answers[i]) {
      const bool found =
          std::binary_search(expected.begin(), expected.end(), nb);
      EXPECT_TRUE(found) << "query " << i << " object " << nb.id;
    }
  }
}

TEST_P(MultiQueryBackendTest, ShiftingWindowCompletesEveryQuery) {
  Dataset dataset = MakeGaussianClustersDataset(800, 5, 5, 0.05, 311);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  std::vector<Query> queries = RandomObjectKnnBatch(db.get(), 10, 6, 83);
  // Manual shifting-window loop (what ExecuteAll does internally).
  std::vector<Query> window = queries;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = db->MultipleSimilarityQuery(window);
    ASSERT_TRUE(result.ok());
    const AnswerSet expected =
        BruteForceQuery(db->dataset(), metric, queries[i]);
    EXPECT_TRUE(SameAnswers(result->answers[0], expected)) << "window " << i;
    window.erase(window.begin());
  }
}

TEST_P(MultiQueryBackendTest, RepeatedCallIsServedFromBuffer) {
  Dataset dataset = MakeUniformDataset(900, 5, 313);
  auto db = OpenDb(dataset);
  const auto queries = RandomObjectKnnBatch(db.get(), 8, 5, 87);
  ASSERT_TRUE(db->MultipleSimilarityQueryAll(queries).ok());
  const QueryStats before = db->stats();
  // Asking again must not read pages or compute object distances.
  auto again = db->MultipleSimilarityQueryAll(queries);
  ASSERT_TRUE(again.ok());
  const QueryStats delta = db->stats() - before;
  EXPECT_EQ(delta.TotalPageReads(), 0u);
  EXPECT_EQ(delta.dist_computations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, MultiQueryBackendTest,
    ::testing::Values(BackendCase{BackendKind::kLinearScan, "scan"},
                      BackendCase{BackendKind::kXTree, "xtree"},
                      BackendCase{BackendKind::kMTree, "mtree"},
                      BackendCase{BackendKind::kVaFile, "vafile"}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// Engine-level semantics (scan backend unless noted)
// ---------------------------------------------------------------------

std::unique_ptr<MetricDatabase> OpenScanDb(Dataset dataset,
                                           MultiQueryOptions multi = {}) {
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.page_size_bytes = 2048;
  options.multi = multi;
  auto db = MetricDatabase::Open(std::move(dataset),
                                 std::make_shared<EuclideanMetric>(), options);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(MultiQueryEngineTest, EmptyBatchRejected) {
  auto db = OpenScanDb(MakeUniformDataset(100, 4, 315));
  EXPECT_TRUE(db->MultipleSimilarityQuery({}).status().IsInvalidArgument());
}

TEST(MultiQueryEngineTest, OversizedBatchRejected) {
  MultiQueryOptions multi;
  multi.max_batch_size = 4;
  auto db = OpenScanDb(MakeUniformDataset(200, 4, 317), multi);
  const auto queries = RandomObjectKnnBatch(db.get(), 5, 3, 91);
  EXPECT_TRUE(
      db->MultipleSimilarityQuery(queries).status().IsResourceExhausted());
}

TEST(MultiQueryEngineTest, DuplicateQueryIdsRejected) {
  auto db = OpenScanDb(MakeUniformDataset(200, 4, 319));
  std::vector<Query> queries{db->MakeObjectKnnQuery(1, 3),
                             db->MakeObjectKnnQuery(1, 3)};
  EXPECT_TRUE(
      db->MultipleSimilarityQuery(queries).status().IsInvalidArgument());
}

TEST(MultiQueryEngineTest, ReusedIdWithDifferentTypeRejected) {
  auto db = OpenScanDb(MakeUniformDataset(200, 4, 321));
  ASSERT_TRUE(
      db->MultipleSimilarityQuery({db->MakeObjectKnnQuery(1, 3)}).ok());
  EXPECT_TRUE(db->MultipleSimilarityQuery({db->MakeObjectKnnQuery(1, 5)})
                  .status()
                  .IsInvalidArgument());
}

// Regression: the duplicate-id check used to run *after* GetOrCreate had
// already inserted fresh states, so a rejected batch left its states
// resident in the buffer forever (capacity enforcement is never reached
// on the error path).
TEST(MultiQueryEngineTest, RejectedDuplicateIdBatchLeavesBufferUnchanged) {
  auto db = OpenScanDb(MakeUniformDataset(200, 4, 329));
  ASSERT_TRUE(db->MultipleSimilarityQuery({db->MakeObjectKnnQuery(9, 3)}).ok());
  ASSERT_EQ(db->engine().buffer().size(), 1u);

  std::vector<Query> queries{db->MakeObjectKnnQuery(1, 3),
                             db->MakeObjectKnnQuery(2, 3),
                             db->MakeObjectKnnQuery(1, 3)};
  ASSERT_TRUE(
      db->MultipleSimilarityQuery(queries).status().IsInvalidArgument());
  // Neither the duplicated id nor its innocent batchmate leaked a state.
  EXPECT_EQ(db->engine().buffer().size(), 1u);
  EXPECT_EQ(db->engine().buffer().Find(1), nullptr);
  EXPECT_EQ(db->engine().buffer().Find(2), nullptr);
}

// Regression companion: a batch rejected mid-admission by a definition
// conflict must roll back exactly the states it created — earlier batch
// members' fresh states included — while leaving pre-existing states
// (including the conflicting one) untouched.
TEST(MultiQueryEngineTest, RejectedConflictingBatchRollsBackCreatedStates) {
  auto db = OpenScanDb(MakeUniformDataset(200, 4, 331));
  const Query original = db->MakeObjectKnnQuery(5, 3);
  ASSERT_TRUE(db->MultipleSimilarityQuery({original}).ok());
  ASSERT_EQ(db->engine().buffer().size(), 1u);

  // Fresh ids 6 and 7 are admitted first, then id 5 conflicts (different
  // k) and the whole batch is rejected.
  std::vector<Query> queries{db->MakeObjectKnnQuery(6, 3),
                             db->MakeObjectKnnQuery(7, 3),
                             db->MakeObjectKnnQuery(5, 8)};
  ASSERT_TRUE(
      db->MultipleSimilarityQuery(queries).status().IsInvalidArgument());
  EXPECT_EQ(db->engine().buffer().size(), 1u);
  EXPECT_EQ(db->engine().buffer().Find(6), nullptr);
  EXPECT_EQ(db->engine().buffer().Find(7), nullptr);
  // The original state survived, complete, and still answers correctly.
  BufferedQueryState* kept = db->engine().buffer().Find(5);
  ASSERT_NE(kept, nullptr);
  EXPECT_TRUE(kept->complete);
  auto again = db->MultipleSimilarityQuery({original});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(SameAnswers(
      again->answers[0],
      BruteForceQuery(db->dataset(), db->metric(), original)));
}

TEST(MultiQueryEngineTest, BatchOfOneMatchesSingleQuery) {
  Dataset dataset = MakeUniformDataset(600, 5, 323);
  auto db = OpenScanDb(dataset);
  EuclideanMetric metric;
  Query q = db->MakeObjectKnnQuery(42, 9);
  auto result = db->MultipleSimilarityQuery({q});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SameAnswers(result->answers[0],
                          BruteForceQuery(db->dataset(), metric, q)));
}

TEST(MultiQueryEngineTest, ScanBatchReadsEachPageOnce) {
  // Sec. 5.1: on the scan, relevant pages coincide for all queries, so a
  // batch of m reads exactly the page count of ONE query.
  Dataset dataset = MakeUniformDataset(2000, 8, 325);
  MultiQueryOptions multi;
  auto db = OpenScanDb(dataset, multi);
  const size_t pages = db->backend().NumDataPages();
  const auto queries = RandomObjectKnnBatch(db.get(), 20, 10, 93);
  db->ResetStats();
  ASSERT_TRUE(db->MultipleSimilarityQueryAll(queries).ok());
  EXPECT_EQ(db->stats().TotalPageReads(), pages);
}

TEST(MultiQueryEngineTest, IoSharingNeverIncreasesPageReads) {
  Dataset dataset = MakeGaussianClustersDataset(2000, 8, 10, 0.04, 327);
  const auto make_queries = [](MetricDatabase* db) {
    return RandomObjectKnnBatch(db, 16, 10, 95);
  };
  // Batched.
  auto db_multi = OpenScanDb(dataset);
  ASSERT_TRUE(
      db_multi->MultipleSimilarityQueryAll(make_queries(db_multi.get())).ok());
  // One by one.
  auto db_single = OpenScanDb(dataset);
  for (const Query& q : make_queries(db_single.get())) {
    ASSERT_TRUE(db_single->SimilarityQuery(q).ok());
  }
  EXPECT_LE(db_multi->stats().TotalPageReads(),
            db_single->stats().TotalPageReads());
}

TEST(MultiQueryEngineTest, TriangleAvoidanceReducesDistanceComputations) {
  Dataset dataset = MakeGaussianClustersDataset(3000, 8, 12, 0.03, 329);
  MultiQueryOptions with;
  with.enable_triangle_avoidance = true;
  MultiQueryOptions without;
  without.enable_triangle_avoidance = false;

  auto db_with = OpenScanDb(dataset, with);
  auto db_without = OpenScanDb(dataset, without);
  const auto queries_a = RandomObjectKnnBatch(db_with.get(), 30, 10, 97);
  const auto queries_b = RandomObjectKnnBatch(db_without.get(), 30, 10, 97);
  ASSERT_TRUE(db_with->MultipleSimilarityQueryAll(queries_a).ok());
  ASSERT_TRUE(db_without->MultipleSimilarityQueryAll(queries_b).ok());

  EXPECT_GT(db_with->stats().triangle_avoided, 0u);
  EXPECT_LT(db_with->stats().dist_computations,
            db_without->stats().dist_computations);
  // And the avoided computations are exactly the difference.
  EXPECT_EQ(db_with->stats().dist_computations +
                db_with->stats().triangle_avoided,
            db_without->stats().dist_computations);
}

TEST(MultiQueryEngineTest, AvoidanceDoesNotChangeResults) {
  Dataset dataset = MakeGaussianClustersDataset(1500, 8, 10, 0.04, 331);
  MultiQueryOptions with;
  with.enable_triangle_avoidance = true;
  MultiQueryOptions without;
  without.enable_triangle_avoidance = false;
  auto db_with = OpenScanDb(dataset, with);
  auto db_without = OpenScanDb(dataset, without);
  const auto queries_a = RandomObjectKnnBatch(db_with.get(), 20, 8, 99);
  const auto queries_b = RandomObjectKnnBatch(db_without.get(), 20, 8, 99);
  auto all_with = db_with->MultipleSimilarityQueryAll(queries_a);
  auto all_without = db_without->MultipleSimilarityQueryAll(queries_b);
  ASSERT_TRUE(all_with.ok());
  ASSERT_TRUE(all_without.ok());
  for (size_t i = 0; i < queries_a.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*all_with)[i], (*all_without)[i])) << i;
  }
}

TEST(MultiQueryEngineTest, MatrixCostIsQuadraticOncePerBlock) {
  // A block of m queries completed by the shifting window pays exactly
  // m(m-1)/2 matrix distance computations (the paper's first CPU term).
  Dataset dataset = MakeUniformDataset(800, 6, 333);
  auto db = OpenScanDb(dataset);
  const size_t m = 12;
  const auto queries = RandomObjectKnnBatch(db.get(), m, 5, 103);
  db->ResetStats();
  ASSERT_TRUE(db->MultipleSimilarityQueryAll(queries).ok());
  EXPECT_EQ(db->stats().matrix_dist_computations, m * (m - 1) / 2);
}

TEST(MultiQueryEngineTest, StatsCountCompletedQueries) {
  Dataset dataset = MakeUniformDataset(500, 5, 335);
  auto db = OpenScanDb(dataset);
  const auto queries = RandomObjectKnnBatch(db.get(), 7, 4, 105);
  db->ResetStats();
  ASSERT_TRUE(db->MultipleSimilarityQueryAll(queries).ok());
  EXPECT_EQ(db->stats().queries_completed, 7u);
  EXPECT_EQ(db->stats().answers_produced, 7u * 4u);
}

TEST(MultiQueryEngineTest, ResetAllForgetsBufferedAnswers) {
  Dataset dataset = MakeUniformDataset(600, 5, 337);
  auto db = OpenScanDb(dataset);
  const auto queries = RandomObjectKnnBatch(db.get(), 6, 4, 107);
  ASSERT_TRUE(db->MultipleSimilarityQueryAll(queries).ok());
  db->ResetAll();
  ASSERT_TRUE(db->MultipleSimilarityQueryAll(queries).ok());
  // After the reset the work is done again from scratch.
  EXPECT_GT(db->stats().TotalPageReads(), 0u);
  EXPECT_GT(db->stats().dist_computations, 0u);
}

TEST(MultiQueryEngineTest, FailedExecuteDetachesStatsSink) {
  // Regression: the error paths of ExecuteInternal (duplicate ids,
  // GetOrCreate failure) used to return without resetting the metric's
  // stats sink, leaving a pointer to the caller's (possibly dead)
  // QueryStats installed on the long-lived engine.
  auto db = OpenScanDb(MakeUniformDataset(300, 4, 401));
  MultiQueryEngine& engine = db->engine();
  {
    QueryStats doomed;  // dies at the end of this scope
    std::vector<Query> dup{db->MakeObjectKnnQuery(1, 3),
                           db->MakeObjectKnnQuery(1, 3)};
    ASSERT_FALSE(engine.Execute(dup, &doomed).ok());
    EXPECT_EQ(engine.counting_metric().stats(), nullptr)
        << "failed Execute left a stats sink installed";
  }
  // GetOrCreate failure path: id 5 buffered as kNN(4), re-submitted with a
  // different cardinality.
  ASSERT_TRUE(engine.Execute({db->MakeObjectKnnQuery(5, 4)}, nullptr).ok());
  {
    QueryStats doomed;
    ASSERT_FALSE(engine.Execute({db->MakeObjectKnnQuery(5, 9)}, &doomed).ok());
    EXPECT_EQ(engine.counting_metric().stats(), nullptr);
  }
}

TEST(MultiQueryEngineTest, FailedExecuteDoesNotPoisonLaterStats) {
  // The companion observable: a failed call's stats object must not
  // receive any charges from a subsequent successful call.
  auto db = OpenScanDb(MakeUniformDataset(300, 4, 403));
  MultiQueryEngine& engine = db->engine();
  QueryStats failed_stats;
  std::vector<Query> dup{db->MakeObjectKnnQuery(2, 3),
                         db->MakeObjectKnnQuery(2, 3)};
  ASSERT_FALSE(engine.Execute(dup, &failed_stats).ok());
  const uint64_t dists_after_failure = failed_stats.dist_computations;

  QueryStats ok_stats;
  ASSERT_TRUE(engine.Execute({db->MakeObjectKnnQuery(3, 3)}, &ok_stats).ok());
  EXPECT_GT(ok_stats.dist_computations, 0u);
  EXPECT_EQ(failed_stats.dist_computations, dists_after_failure)
      << "successful call charged work to the failed call's stats";
}

TEST(MultiQueryEngineTest, ExecuteAllMatchesManualShiftingWindow) {
  // Regression for the O(m^2) window fix: ExecuteAll's span-based sliding
  // window must do exactly what the copy-and-pop-front loop did — same
  // answers AND same charged work.
  Dataset dataset = MakeGaussianClustersDataset(1000, 5, 6, 0.05, 405);
  auto db_all = OpenScanDb(dataset);
  auto db_manual = OpenScanDb(dataset);
  const auto queries = RandomObjectKnnBatch(db_all.get(), 18, 7, 407);

  auto all = db_all->MultipleSimilarityQueryAll(queries);
  ASSERT_TRUE(all.ok());

  std::vector<Query> window = queries;  // the old path, spelled out
  std::vector<AnswerSet> manual;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = db_manual->MultipleSimilarityQuery(window);
    ASSERT_TRUE(result.ok());
    manual.push_back(result->answers[0]);
    window.erase(window.begin());
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*all)[i], manual[i])) << "query " << i;
  }
  const QueryStats& a = db_all->stats();
  const QueryStats& b = db_manual->stats();
  EXPECT_EQ(a.TotalPageReads(), b.TotalPageReads());
  EXPECT_EQ(a.dist_computations, b.dist_computations);
  EXPECT_EQ(a.matrix_dist_computations, b.matrix_dist_computations);
}

TEST(MultiQueryEngineTest, BufferEvictionKeepsResultsCorrect) {
  Dataset dataset = MakeUniformDataset(700, 5, 339);
  MultiQueryOptions multi;
  multi.buffer_capacity = 4;  // tiny: constant eviction
  auto db = OpenScanDb(dataset, multi);
  EuclideanMetric metric;
  for (uint64_t round = 0; round < 5; ++round) {
    const auto queries = RandomObjectKnnBatch(db.get(), 4, 5, 111 + round);
    auto all = db->MultipleSimilarityQueryAll(queries);
    ASSERT_TRUE(all.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(SameAnswers(
          (*all)[i], BruteForceQuery(db->dataset(), metric, queries[i])));
    }
  }
}

TEST(MultiQueryEngineTest, DependentQueriesReuseBufferedWorkOnXTree) {
  // The exploration pattern of Sec. 5.1: the second call's query objects
  // were prefetched by the first call, so it reads fewer new pages than a
  // cold batch would.
  Dataset dataset = MakeGaussianClustersDataset(3000, 8, 8, 0.03, 341);
  DatabaseOptions options;
  options.backend = BackendKind::kXTree;
  options.page_size_bytes = 2048;
  auto db = MetricDatabase::Open(std::move(dataset),
                                 std::make_shared<EuclideanMetric>(), options);
  ASSERT_TRUE(db.ok());
  // First call: a kNN query whose answers become the next query objects.
  Query first = (*db)->MakeObjectKnnQuery(5, 10);
  std::vector<Query> batch{first};
  auto result = (*db)->MultipleSimilarityQuery(batch);
  ASSERT_TRUE(result.ok());
  std::vector<Query> follow_ups;
  for (const Neighbor& nb : result->answers[0]) {
    if (nb.id != 5) follow_ups.push_back((*db)->MakeObjectKnnQuery(nb.id, 10));
  }
  // Warm path: the follow-ups' neighborhoods overlap the pages just read.
  (*db)->ResetStats();
  ASSERT_TRUE((*db)->MultipleSimilarityQueryAll(follow_ups).ok());
  const uint64_t warm_pages = (*db)->stats().TotalPageReads() +
                              (*db)->stats().buffer_hits +
                              (*db)->stats().pages_skipped_buffered;
  EXPECT_GT((*db)->stats().pages_skipped_buffered, 0u)
      << "dependent queries should skip pages already accounted";
  EXPECT_GT(warm_pages, 0u);
}

// ---------------------------------------------------------------------
// Avoidance primitives
// ---------------------------------------------------------------------

TEST(AvoidanceTest, Lemma1ProvesExclusion) {
  // dist(O,Q1) > dist(Q2,Q1) + QueryDist(Q2)  ==> avoid.
  QueryDistanceCache cache;
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  std::vector<Query> queries{
      {1, Vec{0, 0}, QueryType::Knn(1)},
      {2, Vec{1, 0}, QueryType::Knn(1)},
  };
  std::vector<uint32_t> idx;
  cache.Prepare(queries, metric, &idx);
  QueryStats stats;
  // O at distance 10 from Q1; query dist of Q2 is 2; d(Q1,Q2)=1.
  std::vector<KnownQueryDistance> known{{idx[0], 10.0}};
  EXPECT_TRUE(CanAvoidDistance(cache, known, idx[1], 2.0, &stats));
  EXPECT_EQ(stats.triangle_avoided, 1u);
  EXPECT_GE(stats.triangle_tries, 1u);
}

TEST(AvoidanceTest, Lemma2ProvesExclusion) {
  // dist(Q2,Q1) > dist(O,Q1) + QueryDist(Q2)  ==> avoid.
  QueryDistanceCache cache;
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  std::vector<Query> queries{
      {1, Vec{0, 0}, QueryType::Knn(1)},
      {2, Vec{20, 0}, QueryType::Knn(1)},
  };
  std::vector<uint32_t> idx;
  cache.Prepare(queries, metric, &idx);
  QueryStats stats;
  std::vector<KnownQueryDistance> known{{idx[0], 0.5}};
  EXPECT_TRUE(CanAvoidDistance(cache, known, idx[1], 2.0, &stats));
}

TEST(AvoidanceTest, NoFalseExclusionNearBoundary) {
  QueryDistanceCache cache;
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  std::vector<Query> queries{
      {1, Vec{0, 0}, QueryType::Knn(1)},
      {2, Vec{1, 0}, QueryType::Knn(1)},
  };
  std::vector<uint32_t> idx;
  cache.Prepare(queries, metric, &idx);
  QueryStats stats;
  // Exactly at the bound: dist(O,Q1) == d(Q1,Q2) + qd -> premise not
  // strict, must NOT avoid (O could be exactly at the query distance).
  std::vector<KnownQueryDistance> known{{idx[0], 3.0}};
  EXPECT_FALSE(CanAvoidDistance(cache, known, idx[1], 2.0, &stats));
}

TEST(AvoidanceTest, InfiniteQueryDistNeverAvoidsAndCostsNothing) {
  QueryDistanceCache cache;
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  std::vector<Query> queries{
      {1, Vec{0, 0}, QueryType::Knn(1)},
      {2, Vec{1, 0}, QueryType::Knn(1)},
  };
  std::vector<uint32_t> idx;
  cache.Prepare(queries, metric, &idx);
  QueryStats stats;
  std::vector<KnownQueryDistance> known{{idx[0], 100.0}};
  EXPECT_FALSE(CanAvoidDistance(cache, known, idx[1],
                                std::numeric_limits<double>::infinity(),
                                &stats));
  EXPECT_EQ(stats.triangle_tries, 0u);
}

TEST(AvoidanceTest, SoundnessOnRandomInstances) {
  // Whenever CanAvoidDistance says "avoid", the true distance must indeed
  // exceed the query distance.
  Rng rng(131);
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  for (int trial = 0; trial < 500; ++trial) {
    QueryDistanceCache cache;
    std::vector<Query> queries;
    const size_t m = 2 + rng.NextIndex(4);
    for (size_t i = 0; i < m; ++i) {
      Vec p(4);
      for (auto& x : p) x = static_cast<Scalar>(rng.NextDouble());
      queries.push_back({i + 1, p, QueryType::Knn(1)});
    }
    std::vector<uint32_t> idx;
    cache.Prepare(queries, metric, &idx);
    Vec object(4);
    for (auto& x : object) x = static_cast<Scalar>(rng.NextDouble(-1, 2));
    std::vector<KnownQueryDistance> known;
    for (size_t i = 0; i + 1 < m; ++i) {
      known.push_back(
          {idx[i], metric.DistanceUncounted(queries[i].point, object)});
    }
    const double qd = rng.NextDouble(0.0, 1.0);
    if (CanAvoidDistance(cache, known, idx[m - 1], qd, nullptr)) {
      const double true_dist =
          metric.DistanceUncounted(queries[m - 1].point, object);
      EXPECT_GT(true_dist, qd);
    }
  }
}

// ---------------------------------------------------------------------
// QueryDistanceCache
// ---------------------------------------------------------------------

TEST(QueryDistanceCacheTest, ComputesEachPairOnce) {
  QueryDistanceCache cache;
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  QueryStats stats;
  metric.set_stats(&stats);
  std::vector<Query> queries;
  for (size_t i = 0; i < 10; ++i) {
    queries.push_back({i + 1, Vec{static_cast<Scalar>(i), 0}, QueryType::Knn(1)});
  }
  std::vector<uint32_t> idx;
  cache.Prepare(queries, metric, &idx);
  EXPECT_EQ(stats.matrix_dist_computations, 45u);
  cache.Prepare(queries, metric, &idx);  // all cached
  EXPECT_EQ(stats.matrix_dist_computations, 45u);
}

TEST(QueryDistanceCacheTest, ShiftedWindowAddsOnlyNewPairs) {
  QueryDistanceCache cache;
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  QueryStats stats;
  metric.set_stats(&stats);
  std::vector<Query> queries;
  for (size_t i = 0; i < 5; ++i) {
    queries.push_back({i + 1, Vec{static_cast<Scalar>(i), 0}, QueryType::Knn(1)});
  }
  std::vector<uint32_t> idx;
  cache.Prepare(queries, metric, &idx);  // 10 pairs
  // Drop the first, add one new: the new query pairs with the 5 residents.
  queries.erase(queries.begin());
  queries.push_back({99, Vec{42, 0}, QueryType::Knn(1)});
  cache.Prepare(queries, metric, &idx);
  EXPECT_EQ(stats.matrix_dist_computations, 10u + 5u);
}

TEST(QueryDistanceCacheTest, DistValuesMatchMetric) {
  QueryDistanceCache cache;
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  std::vector<Query> queries{
      {1, Vec{0, 0}, QueryType::Knn(1)},
      {2, Vec{3, 4}, QueryType::Knn(1)},
      {3, Vec{6, 8}, QueryType::Knn(1)},
  };
  std::vector<uint32_t> idx;
  cache.Prepare(queries, metric, &idx);
  EXPECT_DOUBLE_EQ(cache.Dist(idx[0], idx[1]), 5.0);
  EXPECT_DOUBLE_EQ(cache.Dist(idx[1], idx[0]), 5.0);
  EXPECT_DOUBLE_EQ(cache.Dist(idx[0], idx[2]), 10.0);
  EXPECT_DOUBLE_EQ(cache.Dist(idx[1], idx[1]), 0.0);
}

TEST(QueryDistanceCacheTest, CompactionPreservesDistances) {
  QueryDistanceCache cache(/*compact_threshold=*/8);
  CountingMetric metric(std::make_shared<EuclideanMetric>());
  QueryStats stats;
  metric.set_stats(&stats);
  // Fill beyond the threshold with rolling windows.
  std::vector<Query> window;
  for (size_t i = 0; i < 20; ++i) {
    window.push_back({i + 1, Vec{static_cast<Scalar>(i), 1}, QueryType::Knn(1)});
    if (window.size() > 4) window.erase(window.begin());
    std::vector<uint32_t> idx;
    cache.Prepare(window, metric, &idx);
    // Check a pair value after every Prepare.
    if (window.size() >= 2) {
      const double expected = metric.DistanceUncounted(window[0].point,
                                                       window[1].point);
      EXPECT_DOUBLE_EQ(cache.Dist(idx[0], idx[1]), expected);
    }
  }
  EXPECT_LE(cache.size(), 9u);
}

}  // namespace
}  // namespace msq
