// Tests for the online-mutability layer (DESIGN §13): epoch-based
// reclamation, the chunked copy-on-write container, two-tier pivot rows,
// insert/delete visibility against every backend, quiesced equality (a
// mutated-then-compacted database answers bit-identically to a fresh build
// of the same final object set, pivots on and off), persistence of the
// mutated state through the page store, a mixed reader/writer stress run
// (the TSan CI target), and the multi-tenant scheduler lanes: tenant-scoped
// coalescing, per-tenant quotas, lane-ordered flushing, and SLO shedding.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cow_vec.h"
#include "core/database.h"
#include "core/epoch.h"
#include "core/pivot_table.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "parallel/thread_pool.h"
#include "service/batch_scheduler.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

constexpr BackendKind kAllBackends[] = {
    BackendKind::kLinearScan, BackendKind::kXTree, BackendKind::kMTree,
    BackendKind::kVaFile};

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::unique_ptr<MetricDatabase> OpenDb(const Dataset& data, BackendKind kind,
                                       bool pivots = false) {
  DatabaseOptions options;
  options.backend = kind;
  options.pivots.enabled = pivots;
  options.pivots.table.num_pivots = 4;
  options.pivots.table.sample_size = 64;
  auto db = MetricDatabase::Open(data, std::make_shared<EuclideanMetric>(),
                                 options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return db.ok() ? std::move(db).value() : nullptr;
}

/// Exhaustive oracle over the *current overlay state* of a mutable
/// database: base minus tombstones plus live delta, ids as queries see
/// them before compaction.
AnswerSet OverlayOracle(const LiveVersion& v, const Metric& metric,
                        const Query& q) {
  AnswerSet all;
  for (size_t id = 0; id < v.total_objects(); ++id) {
    if (v.tombstoned(id)) continue;
    const Vec& row = id < v.base_n
                         ? v.base_dataset->object(static_cast<ObjectId>(id))
                         : v.delta[id - v.base_n];
    const double d = metric.Distance(q.point, row);
    if (d <= q.type.range) all.push_back({static_cast<ObjectId>(id), d});
  }
  std::sort(all.begin(), all.end());
  if (q.type.Adaptive() && all.size() > q.type.cardinality) {
    all.resize(q.type.cardinality);
  }
  return all;
}

// --- EpochManager --------------------------------------------------------

TEST(MutateEpochTest, ReclaimWaitsForActiveReader) {
  EpochManager epochs;
  auto version = std::make_shared<int>(7);
  std::weak_ptr<int> alive = version;

  EpochManager::Guard reader = epochs.Pin();
  epochs.Retire(std::move(version));
  // The reader pinned before the retirement, so the retired object must
  // survive every reclamation attempt while the pin is held.
  epochs.Reclaim();
  EXPECT_FALSE(alive.expired());
  EXPECT_EQ(epochs.limbo_size(), 1u);
  EXPECT_GE(epochs.ReclaimLagEpochs(), 1u);

  reader.Release();
  epochs.Reclaim();
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(epochs.limbo_size(), 0u);
  EXPECT_EQ(epochs.ReclaimLagEpochs(), 0u);
}

TEST(MutateEpochTest, RetireWithoutReadersReclaimsImmediately) {
  EpochManager epochs;
  auto version = std::make_shared<int>(1);
  std::weak_ptr<int> alive = version;
  // Retire advances the epoch and reclaims inline; with no pins the limbo
  // entry must not outlive the call.
  epochs.Retire(std::move(version));
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(epochs.limbo_size(), 0u);
}

TEST(MutateEpochTest, LaterPinDoesNotBlockOlderRetirement) {
  EpochManager epochs;
  auto old_version = std::make_shared<int>(1);
  std::weak_ptr<int> alive = old_version;
  epochs.Retire(std::move(old_version));  // reclaimed inline (no readers)
  ASSERT_TRUE(alive.expired());

  // A reader pinning *now* can only observe post-retirement state; a fresh
  // retirement parks until the pin drops, but the pin cannot resurrect
  // eligibility rules for entries retired at even older epochs.
  EpochManager::Guard reader = epochs.Pin();
  auto next = std::make_shared<int>(2);
  std::weak_ptr<int> next_alive = next;
  epochs.Retire(std::move(next));
  EXPECT_FALSE(next_alive.expired());
  reader.Release();
  epochs.Reclaim();
  EXPECT_TRUE(next_alive.expired());
}

// --- CowChunkedVec -------------------------------------------------------

TEST(MutateCowVecTest, SnapshotsAreIsolatedFromLaterWrites) {
  CowChunkedVec<int> writer;
  for (int i = 0; i < 150; ++i) writer.PushBack(i);  // spans 3 chunks

  const CowChunkedVec<int> snapshot = writer;  // O(chunks) copy
  writer.PushBack(999);
  writer.Set(3, -3);
  writer.Set(130, -130);

  ASSERT_EQ(snapshot.size(), 150u);
  EXPECT_EQ(snapshot[3], 3);
  EXPECT_EQ(snapshot[130], 130);
  ASSERT_EQ(writer.size(), 151u);
  EXPECT_EQ(writer[3], -3);
  EXPECT_EQ(writer[130], -130);
  EXPECT_EQ(writer[150], 999);
  // Untouched chunks stay shared: element 64..127 live in a chunk neither
  // write touched, so both views agree.
  EXPECT_EQ(snapshot[70], writer[70]);
}

// --- PivotTable::WithAppendedRow -----------------------------------------

TEST(MutatePivotTest, AppendedRowIsExactAndSharesBase) {
  const Dataset data = MakeUniformDataset(120, 5, 3);
  EuclideanMetric metric;
  PivotTableOptions options;
  options.num_pivots = 4;
  options.sample_size = 64;
  auto built = PivotTable::Build(data, metric, options);
  ASSERT_TRUE(built.ok());
  std::shared_ptr<const PivotTable> table = std::move(built).value();

  const Vec extra = MakeUniformDataset(1, 5, 9).object(0);
  std::shared_ptr<const PivotTable> appended =
      table->WithAppendedRow(extra, metric);
  ASSERT_EQ(appended->num_objects(), table->num_objects() + 1);
  const double* row = appended->Row(static_cast<ObjectId>(data.size()));
  for (size_t k = 0; k < appended->num_pivots(); ++k) {
    EXPECT_EQ(row[k], metric.Distance(extra, appended->pivot_point(k)));
  }
  // The base rows are shared, not copied: identical storage addresses.
  EXPECT_EQ(appended->Row(0), table->Row(0));
}

// --- insert/delete visibility before compaction --------------------------

TEST(MutateTest, InsertVisibleAndDeleteHiddenOnEveryBackend) {
  const Dataset base = MakeUniformDataset(300, 6, 21);
  const Dataset adds = MakeUniformDataset(10, 6, 22);
  const Dataset probes = MakeUniformDataset(6, 6, 23);
  EuclideanMetric metric;
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(BackendKindName(kind));
    auto db = OpenDb(base, kind);
    ASSERT_NE(db, nullptr);
    std::vector<ObjectId> delta_ids;
    for (size_t i = 0; i < adds.size(); ++i) {
      auto id = db->Insert(adds.object(static_cast<ObjectId>(i)));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      EXPECT_EQ(*id, base.size() + i);
      delta_ids.push_back(*id);
    }
    ASSERT_TRUE(db->Delete(7).ok());                  // base tier
    ASSERT_TRUE(db->Delete(133).ok());                // base tier
    ASSERT_TRUE(db->Delete(delta_ids[2]).ok());       // delta tier
    ASSERT_TRUE(db->Delete(delta_ids[9]).ok());       // delta tier
    EXPECT_FALSE(db->Delete(7).ok());                 // double delete refused
    EXPECT_EQ(db->NumDeltaObjects(), adds.size());
    EXPECT_EQ(db->NumTombstones(), 4u);
    EXPECT_EQ(db->NumLiveObjects(), base.size() + adds.size() - 4);

    auto version = db->CurrentVersion();
    for (size_t i = 0; i < probes.size(); ++i) {
      const Query knn{static_cast<QueryId>(9000 + i),
                      probes.object(static_cast<ObjectId>(i)),
                      QueryType::Knn(8)};
      auto got = db->SimilarityQuery(knn);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(SameAnswers(*got, OverlayOracle(*version, metric, knn), 0.0));

      const Query range{static_cast<QueryId>(9100 + i),
                        probes.object(static_cast<ObjectId>(i)),
                        QueryType::Range(0.7)};
      auto got_range = db->SimilarityQuery(range);
      ASSERT_TRUE(got_range.ok()) << got_range.status().ToString();
      EXPECT_TRUE(SameAnswers(*got_range,
                              OverlayOracle(*version, metric, range), 0.0));
    }
  }
}

// --- quiesced equality (the acceptance criterion) ------------------------

// Mutate, compact, and compare against a database built directly from the
// final object set: answers must be bit-identical (ids and distances) for
// every backend, pivots off and on. Compaction renumbers survivors in
// base-then-insertion order, which is exactly the row order of `final_set`
// below, so ids must agree too.
TEST(MutateTest, QuiescedCompactionMatchesFreshBuild) {
  const Dataset base = MakeUniformDataset(240, 6, 5);
  const Dataset adds = MakeUniformDataset(40, 6, 77);
  const Dataset probes = MakeUniformDataset(12, 6, 99);
  const std::vector<ObjectId> dead_base = {3, 57, 120, 239};
  const std::vector<size_t> dead_delta = {1, 5, 19};

  // The final object set, in the id order compaction produces.
  std::vector<Vec> rows;
  for (ObjectId id = 0; id < base.size(); ++id) {
    if (std::find(dead_base.begin(), dead_base.end(), id) == dead_base.end()) {
      rows.push_back(base.object(id));
    }
  }
  for (size_t i = 0; i < adds.size(); ++i) {
    if (std::find(dead_delta.begin(), dead_delta.end(), i) ==
        dead_delta.end()) {
      rows.push_back(adds.object(static_cast<ObjectId>(i)));
    }
  }
  const Dataset final_set(6, std::move(rows));

  for (BackendKind kind : kAllBackends) {
    for (bool pivots : {false, true}) {
      SCOPED_TRACE(BackendKindName(kind) + (pivots ? "+pivots" : ""));
      auto db = OpenDb(base, kind, pivots);
      ASSERT_NE(db, nullptr);
      std::vector<ObjectId> delta_ids;
      for (size_t i = 0; i < adds.size(); ++i) {
        auto id = db->Insert(adds.object(static_cast<ObjectId>(i)));
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        delta_ids.push_back(*id);
      }
      for (ObjectId id : dead_base) ASSERT_TRUE(db->Delete(id).ok());
      for (size_t i : dead_delta) ASSERT_TRUE(db->Delete(delta_ids[i]).ok());
      ASSERT_TRUE(db->Compact().ok());
      EXPECT_EQ(db->NumLiveObjects(), final_set.size());
      EXPECT_EQ(db->NumDeltaObjects(), 0u);
      EXPECT_EQ(db->NumTombstones(), 0u);

      auto fresh = OpenDb(final_set, kind, pivots);
      ASSERT_NE(fresh, nullptr);
      for (size_t i = 0; i < probes.size(); ++i) {
        const Query knn{static_cast<QueryId>(7000 + i),
                        probes.object(static_cast<ObjectId>(i)),
                        QueryType::Knn(7)};
        auto mutated = db->SimilarityQuery(knn);
        auto rebuilt = fresh->SimilarityQuery(knn);
        ASSERT_TRUE(mutated.ok() && rebuilt.ok());
        EXPECT_TRUE(SameAnswers(*mutated, *rebuilt, 0.0));

        const Query range{static_cast<QueryId>(7100 + i),
                          probes.object(static_cast<ObjectId>(i)),
                          QueryType::Range(0.8)};
        auto mutated_range = db->SimilarityQuery(range);
        auto rebuilt_range = fresh->SimilarityQuery(range);
        ASSERT_TRUE(mutated_range.ok() && rebuilt_range.ok());
        EXPECT_TRUE(SameAnswers(*mutated_range, *rebuilt_range, 0.0));
      }
    }
  }
}

// --- persistence of mutated state ----------------------------------------

// Save compacts first, so the written file is a clean base; reopening it
// must answer like a fresh build of the final set, and the reopened
// database must itself accept further mutations and a second Save.
TEST(MutateTest, MutateSaveReopenMutateSaveAgain) {
  const Dataset base = MakeUniformDataset(200, 5, 41);
  const Dataset adds = MakeUniformDataset(12, 5, 42);
  const Dataset probes = MakeUniformDataset(6, 5, 43);
  EuclideanMetric metric;
  for (BackendKind kind : {BackendKind::kXTree, BackendKind::kVaFile}) {
    SCOPED_TRACE(BackendKindName(kind));
    const std::string p1 = TempPath("mutate_reopen_1_" +
                                    BackendKindName(kind) + ".msq");
    const std::string p2 = TempPath("mutate_reopen_2_" +
                                    BackendKindName(kind) + ".msq");
    {
      auto db = OpenDb(base, kind);
      ASSERT_NE(db, nullptr);
      for (size_t i = 0; i < adds.size(); ++i) {
        ASSERT_TRUE(db->Insert(adds.object(static_cast<ObjectId>(i))).ok());
      }
      ASSERT_TRUE(db->Delete(11).ok());
      ASSERT_TRUE(db->Delete(static_cast<ObjectId>(base.size() + 4)).ok());
      ASSERT_TRUE(db->Save(p1).ok());
    }
    auto reopened = MetricDatabase::Open(p1);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->NumLiveObjects(), base.size() + adds.size() - 2);
    EXPECT_EQ((*reopened)->NumDeltaObjects(), 0u);
    {
      const Dataset& loaded = *(*reopened)->CurrentVersion()->base_dataset;
      const Query q{8000, probes.object(0), QueryType::Knn(6)};
      auto got = (*reopened)->SimilarityQuery(q);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(SameAnswers(*got, BruteForceQuery(loaded, metric, q), 0.0));
    }
    // Mutate the *reopened* database (its base was loaded from the store,
    // not built in-process) and save to a second path.
    ASSERT_TRUE((*reopened)->Insert(probes.object(5)).ok());
    ASSERT_TRUE((*reopened)->Delete(0).ok());
    ASSERT_TRUE((*reopened)->Save(p2).ok());
    auto again = MetricDatabase::Open(p2);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ((*again)->NumLiveObjects(), base.size() + adds.size() - 2);
    {
      const Dataset& loaded = *(*again)->CurrentVersion()->base_dataset;
      const Query q{8001, probes.object(1), QueryType::Knn(6)};
      auto got = (*again)->SimilarityQuery(q);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(SameAnswers(*got, BruteForceQuery(loaded, metric, q), 0.0));
    }
    std::filesystem::remove(p1);
    std::filesystem::remove(p2);
  }
}

// --- mixed reader/writer stress (the TSan CI target) ---------------------

// Four writer threads mutate while four query threads read. The query
// stream is serialized on one mutex (the engine's documented contract);
// the writers run free — epochs and version publication are what TSan
// exercises here. Afterwards the database is compacted and checked
// exhaustively against its own final object set.
TEST(MutateStressTest, ConcurrentWritersAndQueriesAllBackends) {
  constexpr int kWriters = 4;
  constexpr int kQueryThreads = 4;
  constexpr int kInsertsPerWriter = 40;
  constexpr int kQueriesPerThread = 50;
  const Dataset base = MakeUniformDataset(400, 4, 11);
  const Dataset probes = MakeUniformDataset(16, 4, 12);
  EuclideanMetric metric;
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(BackendKindName(kind));
    auto db = OpenDb(base, kind);
    ASSERT_NE(db, nullptr);
    std::atomic<bool> failed{false};
    std::mutex query_mu;
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        Rng rng(static_cast<uint64_t>(100 + w));
        std::vector<ObjectId> mine;
        for (int i = 0; i < kInsertsPerWriter; ++i) {
          Vec v(4);
          for (Scalar& x : v) x = static_cast<Scalar>(rng.NextDouble());
          auto id = db->Insert(std::move(v));
          if (!id.ok()) {
            failed = true;
            return;
          }
          mine.push_back(*id);
          if (i % 3 == 2) {
            // Each writer deletes only ids it inserted itself, each at
            // most once, so every Delete must succeed.
            if (!db->Delete(mine.front()).ok()) {
              failed = true;
              return;
            }
            mine.erase(mine.begin());
          }
        }
      });
    }
    for (int t = 0; t < kQueryThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<uint64_t>(200 + t));
        for (int i = 0; i < kQueriesPerThread; ++i) {
          const Vec& p =
              probes.object(static_cast<ObjectId>(rng.NextIndex(16)));
          std::lock_guard<std::mutex> lock(query_mu);
          auto got = db->SimilarityQuery(db->MakeKnnQuery(p, 5));
          if (!got.ok() || got->size() > 5) {
            failed = true;
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    ASSERT_FALSE(failed.load());
    const size_t deletes_per_writer = kInsertsPerWriter / 3;
    EXPECT_EQ(db->NumLiveObjects(),
              base.size() + kWriters * (kInsertsPerWriter -
                                        deletes_per_writer));

    ASSERT_TRUE(db->Compact().ok());
    const Dataset& final_set = *db->CurrentVersion()->base_dataset;
    for (size_t i = 0; i < 6; ++i) {
      const Query q{static_cast<QueryId>(6000 + i),
                    probes.object(static_cast<ObjectId>(i)),
                    QueryType::Knn(6)};
      auto got = db->SimilarityQuery(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(SameAnswers(*got, BruteForceQuery(final_set, metric, q),
                              0.0));
    }
  }
}

// --- multi-tenant scheduler lanes ----------------------------------------

std::unique_ptr<MetricDatabase> OpenScanDb(const Dataset& data) {
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.multi.max_batch_size = 128;
  auto db = MetricDatabase::Open(data, std::make_shared<EuclideanMetric>(),
                                 options);
  EXPECT_TRUE(db.ok());
  return db.ok() ? std::move(db).value() : nullptr;
}

// The cross-tenant coalescing fix: the same query id from two tenants is
// two queries (independent futures, no coalescing), and the flush keeps
// duplicate ids out of any single engine batch. QueryIds still name query
// *definitions* engine-wide (the AnswerBuffer invariant), so a tenant that
// reuses another tenant's id with a conflicting definition gets that
// tenant's batch rejected — without disturbing anyone else's answers.
TEST(BatchSchedulerTenantTest, SameIdAcrossTenantsIsNeitherCoalescedNorClash) {
  Dataset dataset = MakeUniformDataset(200, 4, 51);
  auto db = OpenScanDb(dataset);
  ASSERT_NE(db, nullptr);
  EuclideanMetric metric;
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(1);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  const Query q1{5, dataset.object(1), QueryType::Knn(3)};
  const Query q2{5, dataset.object(2), QueryType::Knn(3)};  // same id!
  auto fa = scheduler.Submit(q1, "a");
  auto fb = scheduler.Submit(q1, "b");  // identical definition, other tenant
  auto fc = scheduler.Submit(q2, "c");  // same id, different definition
  EXPECT_EQ(scheduler.queries_coalesced(), 0u);
  EXPECT_EQ(scheduler.queries_rejected(), 0u);
  EXPECT_EQ(scheduler.pending_size(), 3u);

  // Same-tenant coalescing still works.
  auto fa2 = scheduler.Submit(q1, "a");
  EXPECT_EQ(scheduler.queries_coalesced(), 1u);

  scheduler.Flush();
  scheduler.Drain();
  // Three entries share one id and one lane, so the flush must have split
  // them into three engine batches.
  EXPECT_EQ(scheduler.batches_executed(), 3u);
  auto ra = fa.get();
  auto rb = fb.get();
  auto rc = fc.get();
  auto ra2 = fa2.get();
  ASSERT_TRUE(ra.ok() && rb.ok() && ra2.ok());
  EXPECT_TRUE(SameAnswers(*ra, BruteForceQuery(dataset, metric, q1)));
  EXPECT_TRUE(SameAnswers(*rb, BruteForceQuery(dataset, metric, q1)));
  EXPECT_TRUE(SameAnswers(*ra2, *ra));
  // Tenant c reused id 5 with a different query point: the engine rejects
  // that definition conflict, and only tenant c sees the error.
  ASSERT_FALSE(rc.ok());
  EXPECT_TRUE(rc.status().IsInvalidArgument());
}

// A flooding tenant is shed at its own quota while another tenant keeps
// being admitted — the structural core of the "a flooder cannot push a
// victim past its SLO" acceptance criterion, with no wall-clock coupling.
TEST(BatchSchedulerTenantTest, TenantQuotaShedsOnlyTheFloodingTenant) {
  Dataset dataset = MakeUniformDataset(200, 4, 52);
  auto db = OpenScanDb(dataset);
  ASSERT_NE(db, nullptr);
  ThreadPool pool(2);

  std::promise<void> gate;
  std::shared_future<void> opened(gate.get_future());
  std::mutex db_mu;
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::microseconds(0);  // flush per submit
  TenantOptions flood;
  flood.lane = 1;
  flood.max_pending = 3;
  options.tenants["flood"] = flood;
  options.executor = [&](const std::vector<Query>& queries,
                         QueryStats*) -> StatusOr<BatchResult> {
    opened.wait();  // hold every admitted query in flight
    std::lock_guard<std::mutex> lock(db_mu);
    return db->MultipleSimilarityQueryAllPartial(queries);
  };
  BatchScheduler scheduler(nullptr, &pool, options);

  std::vector<AnswerFuture> flood_futures;
  for (QueryId id = 0; id < 8; ++id) {
    flood_futures.push_back(scheduler.Submit(
        Query{id, dataset.object(static_cast<ObjectId>(id)),
              QueryType::Knn(3)},
        "flood"));
  }
  // 3 admitted (all in flight behind the gate), 5 shed at the quota.
  EXPECT_EQ(scheduler.queries_shed_tenant("flood"), 5u);
  EXPECT_EQ(scheduler.queries_shed(), 5u);

  std::vector<AnswerFuture> victim_futures;
  for (QueryId id = 100; id < 103; ++id) {
    victim_futures.push_back(scheduler.Submit(
        Query{id, dataset.object(static_cast<ObjectId>(id)),
              QueryType::Knn(3)},
        "victim"));
  }
  // The victim tenant is untouched by the flooder's quota.
  EXPECT_EQ(scheduler.queries_shed_tenant("victim"), 0u);
  EXPECT_EQ(scheduler.queries_shed(), 5u);

  gate.set_value();
  scheduler.Drain();
  size_t flood_ok = 0, flood_shed = 0;
  for (auto& f : flood_futures) {
    auto got = f.get();
    if (got.ok()) {
      ++flood_ok;
    } else {
      EXPECT_TRUE(got.status().IsResourceExhausted());
      ++flood_shed;
    }
  }
  EXPECT_EQ(flood_ok, 3u);
  EXPECT_EQ(flood_shed, 5u);
  for (auto& f : victim_futures) EXPECT_TRUE(f.get().ok());
}

// Lanes flush as separate batches, highest priority first, and a victim
// lane's batches never carry another lane's queries.
TEST(BatchSchedulerTenantTest, LanesFlushAsSeparateBatchesInPriorityOrder) {
  Dataset dataset = MakeUniformDataset(200, 4, 53);
  auto db = OpenScanDb(dataset);
  ASSERT_NE(db, nullptr);
  ThreadPool pool(1);  // single pool thread: execution order == hand-off order

  std::mutex record_mu;
  std::vector<std::vector<QueryId>> executed;
  std::mutex db_mu;
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(1);
  TenantOptions background;
  background.lane = 5;
  options.tenants["bg"] = background;
  options.executor = [&](const std::vector<Query>& queries,
                         QueryStats*) -> StatusOr<BatchResult> {
    {
      std::lock_guard<std::mutex> lock(record_mu);
      executed.emplace_back();
      for (const Query& q : queries) executed.back().push_back(q.id);
    }
    std::lock_guard<std::mutex> lock(db_mu);
    return db->MultipleSimilarityQueryAllPartial(queries);
  };
  BatchScheduler scheduler(nullptr, &pool, options);

  auto f1 = scheduler.Submit(
      Query{1, dataset.object(1), QueryType::Knn(3)}, "bg");
  auto f2 = scheduler.Submit(
      Query{2, dataset.object(2), QueryType::Knn(3)}, "fg");
  auto f3 = scheduler.Submit(
      Query{3, dataset.object(3), QueryType::Knn(3)}, "bg");
  auto f4 = scheduler.Submit(
      Query{4, dataset.object(4), QueryType::Knn(3)}, "fg");
  scheduler.Flush();
  scheduler.Drain();

  ASSERT_TRUE(f1.get().ok() && f2.get().ok() && f3.get().ok() &&
              f4.get().ok());
  ASSERT_EQ(executed.size(), 2u);
  // The foreground lane (default lane 0) outranks lane 5 and flushes
  // first; within each lane, submission order is preserved.
  EXPECT_EQ(executed[0], (std::vector<QueryId>{2, 4}));
  EXPECT_EQ(executed[1], (std::vector<QueryId>{1, 3}));
}

// While a lane with an SLO observes p99 over target, new lower-priority
// submissions are shed; the SLO-holding lane itself keeps being admitted.
TEST(BatchSchedulerTenantTest, SloPressureShedsLowerPriorityLanesOnly) {
  Dataset dataset = MakeUniformDataset(200, 4, 54);
  auto db = OpenScanDb(dataset);
  ASSERT_NE(db, nullptr);
  ThreadPool pool(2);
  std::mutex db_mu;
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::microseconds(0);
  options.slo_min_samples = 4;
  TenantOptions gold;
  gold.lane = 0;
  gold.slo_p99 = std::chrono::microseconds(1);  // unmeetably tight
  options.tenants["gold"] = gold;
  TenantOptions bulk;
  bulk.lane = 1;
  options.tenants["bulk"] = bulk;
  options.executor = [&](const std::vector<Query>& queries,
                         QueryStats*) -> StatusOr<BatchResult> {
    std::lock_guard<std::mutex> lock(db_mu);
    return db->MultipleSimilarityQueryAllPartial(queries);
  };
  BatchScheduler scheduler(nullptr, &pool, options);

  // Fill the gold lane's completion ring: 4 completed queries, each with
  // real end-to-end latency far above 1us.
  std::vector<AnswerFuture> warm;
  for (QueryId id = 0; id < 4; ++id) {
    warm.push_back(scheduler.Submit(
        Query{id, dataset.object(static_cast<ObjectId>(id)),
              QueryType::Knn(3)},
        "gold"));
  }
  scheduler.Drain();
  for (auto& f : warm) ASSERT_TRUE(f.get().ok());

  // Lower-priority work is now shed...
  auto bulk_future = scheduler.Submit(
      Query{50, dataset.object(50), QueryType::Knn(3)}, "bulk");
  auto bulk_result = bulk_future.get();
  ASSERT_FALSE(bulk_result.ok());
  EXPECT_TRUE(bulk_result.status().IsResourceExhausted());
  EXPECT_EQ(scheduler.queries_shed_slo(), 1u);

  // ...but the SLO-holding lane itself is not (shedding gold to protect
  // gold would be self-defeating).
  auto gold_future = scheduler.Submit(
      Query{51, dataset.object(51), QueryType::Knn(3)}, "gold");
  scheduler.Drain();
  EXPECT_TRUE(gold_future.get().ok());
  EXPECT_EQ(scheduler.queries_shed_slo(), 1u);
}

}  // namespace
}  // namespace msq
