// Tests for the observability layer: lock-free instruments and exact
// percentile math, the registry's Prometheus text rendering, the tracer's
// Chrome trace export, and the MetricsSink pipeline that publishes the
// paper's QueryStats cost counters.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace msq {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSink;
using obs::ScopedSpan;
using obs::TraceEvent;
using obs::Tracer;

// ---------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.Value(), 8);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -12);
}

// Named Obs* so the CI TSan job's test filter picks these up.
TEST(ObsConcurrencyTest, CounterAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads * kAddsPerThread));
}

// ---------------------------------------------------------------------
// Histogram percentile math (exact values; conventions of Percentile())
// ---------------------------------------------------------------------

TEST(HistogramTest, BucketAssignmentAndSum) {
  Histogram h({10.0, 20.0, 40.0});
  for (double v : {5.0, 15.0, 30.0, 100.0}) h.Observe(v);
  const auto snap = h.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 150.0);
}

TEST(HistogramTest, PercentileExactValues) {
  Histogram h({10.0, 20.0, 40.0});
  for (double v : {5.0, 15.0, 30.0, 100.0}) h.Observe(v);
  // rank = p/100 * 4; linear interpolation inside the holding bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(25), 10.0);  // rank 1 = top of bucket [0,10]
  EXPECT_DOUBLE_EQ(h.Percentile(50), 20.0);  // rank 2 = top of bucket (10,20]
  EXPECT_DOUBLE_EQ(h.Percentile(75), 40.0);  // rank 3 = top of bucket (20,40]
  // rank 4 lands in the +Inf bucket: the histogram cannot resolve beyond
  // its last finite boundary.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 40.0);
  EXPECT_NEAR(h.Percentile(0), 0.0, 1e-9);
}

TEST(HistogramTest, PercentileSingleBucketInterpolatesFromZero) {
  Histogram h({100.0});
  h.Observe(50.0);
  // One sample in [0, 100]: p99 -> rank 0.99 -> 99.0 exactly.
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
}

TEST(HistogramTest, PercentileEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, PercentileOverflowOnlyReturnsLastFiniteBoundary) {
  Histogram h({10.0});
  h.Observe(1e9);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({10.0});
  h.Observe(5.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(ObsConcurrencyTest, HistogramObservesAreLossless) {
  Histogram h(obs::LatencyBoundariesMicros());
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        h.Observe(static_cast<double>(t * 131 + i % 977));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kObsPerThread));
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, ResolutionIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("test_total", "help");
  Counter* b = reg.GetCounter("test_total", "help");
  EXPECT_EQ(a, b);
  // Distinct labels are distinct cells of the same family.
  Counter* x = reg.GetCounter("labeled_total", "help", "reason=\"a\"");
  Counter* y = reg.GetCounter("labeled_total", "help", "reason=\"b\"");
  EXPECT_NE(x, y);
  EXPECT_EQ(x, reg.GetCounter("labeled_total", "help", "reason=\"a\""));
}

TEST(MetricsRegistryTest, RenderPrometheusText) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total", "Requests served")->Add(3);
  reg.GetGauge("queue_depth", "Queued items")->Set(-2);
  Histogram* h =
      reg.GetHistogram("latency_micros", {1.0, 10.0}, "Request latency");
  h->Observe(0.5);
  h->Observe(5.0);
  reg.GetCounter("flushes_total", "Flushes", "reason=\"size\"")->Add(7);

  const std::string text = reg.RenderPrometheusText();
  EXPECT_NE(text.find("# HELP requests_total Requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_micros histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_micros_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_micros_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_micros_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_micros_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("flushes_total{reason=\"size\"} 7\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ResetValuesKeepsInstruments) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("will_reset_total", "help");
  c->Add(9);
  reg.ResetValues();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(reg.GetCounter("will_reset_total", "help"), c);
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "test.span", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, EnabledSpanIsRecordedWithArgs) {
  Tracer tracer;
  tracer.Enable();
  {
    ScopedSpan span(&tracer, "test.span", "test");
    EXPECT_TRUE(span.active());
    span.AddArg("m", 32.0);
  }
  tracer.Disable();
  ASSERT_EQ(tracer.size(), 1u);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"m\":32"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TracerTest, BoundedBufferDropsAndCounts) {
  Tracer tracer(/*max_events=*/2);
  tracer.Enable();
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.name = "e";
    event.category = "test";
    tracer.Record(event);
  }
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, WriteChromeTraceProducesFile) {
  Tracer tracer;
  tracer.Enable();
  {
    ScopedSpan span(&tracer, "io", "test");
  }
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {0};
  const size_t read = std::fread(buf, 1, 1, f);
  std::fclose(f);
  ASSERT_EQ(read, 1u);
  EXPECT_EQ(buf[0], '{');
}

// ---------------------------------------------------------------------
// MetricsSink: the QueryStats -> registry pipeline
// ---------------------------------------------------------------------

TEST(MetricsSinkTest, PublishQueryStatsMapsEveryField) {
  MetricsRegistry reg;
  MetricsSink sink(&reg, nullptr);
  QueryStats delta;
  delta.dist_computations = 1;
  delta.matrix_dist_computations = 2;
  delta.triangle_tries = 3;
  delta.triangle_avoided = 4;
  delta.random_page_reads = 5;
  delta.seq_page_reads = 6;
  delta.buffer_hits = 7;
  delta.pages_skipped_buffered = 8;
  delta.queries_completed = 9;
  delta.answers_produced = 10;
  sink.PublishQueryStats(delta);
  sink.PublishQueryStats(delta);  // counters accumulate

  const auto value = [&](const char* name) {
    return reg.GetCounter(name, "")->Value();
  };
  EXPECT_EQ(value("msq_engine_dist_computations_total"), 2u);
  EXPECT_EQ(value("msq_engine_matrix_dist_computations_total"), 4u);
  EXPECT_EQ(value("msq_engine_triangle_tries_total"), 6u);
  EXPECT_EQ(value("msq_engine_triangle_avoided_total"), 8u);
  EXPECT_EQ(value("msq_engine_random_page_reads_total"), 10u);
  EXPECT_EQ(value("msq_engine_seq_page_reads_total"), 12u);
  EXPECT_EQ(value("msq_engine_buffer_hits_total"), 14u);
  EXPECT_EQ(value("msq_engine_pages_skipped_buffered_total"), 16u);
  EXPECT_EQ(value("msq_engine_queries_completed_total"), 18u);
  EXPECT_EQ(value("msq_engine_answers_produced_total"), 20u);
}

TEST(MetricsSinkTest, NullRegistryIsNoOp) {
  MetricsSink sink(nullptr, nullptr);
  QueryStats delta;
  delta.dist_computations = 1;
  sink.PublishQueryStats(delta);  // must not crash
  EXPECT_EQ(sink.registry(), nullptr);
  EXPECT_EQ(sink.tracer(), nullptr);
}

// ---------------------------------------------------------------------
// Engine integration: one pipeline from QueryStats to the registry
// ---------------------------------------------------------------------

class ObsEngineTest : public ::testing::Test {
 protected:
  StatusOr<std::unique_ptr<MetricDatabase>> OpenDb(
      const MetricsSink* sink) {
    Dataset data = MakeUniformDataset(600, 8, /*seed=*/5);
    DatabaseOptions options;
    options.backend = BackendKind::kLinearScan;
    options.multi.metrics = sink;
    return MetricDatabase::Open(std::move(data),
                                std::make_shared<EuclideanMetric>(), options);
  }
};

TEST_F(ObsEngineTest, ExecuteAllPublishesStatsToLocalRegistry) {
  MetricsRegistry reg;
  MetricsSink sink(&reg, nullptr);
  auto db = OpenDb(&sink);
  ASSERT_TRUE(db.ok());
  std::vector<Query> batch;
  for (ObjectId id = 0; id < 8; ++id) {
    batch.push_back((*db)->MakeObjectKnnQuery(id, 5));
  }
  ASSERT_TRUE((*db)->MultipleSimilarityQueryAll(batch).ok());

  // The registry's counters must agree exactly with the database's in-band
  // QueryStats — both sides of the one pipeline.
  const QueryStats& stats = (*db)->stats();
  EXPECT_GT(stats.dist_computations, 0u);
  EXPECT_EQ(reg.GetCounter("msq_engine_dist_computations_total", "")->Value(),
            stats.dist_computations);
  EXPECT_EQ(reg.GetCounter("msq_engine_queries_completed_total", "")->Value(),
            stats.queries_completed);
  EXPECT_EQ(reg.GetCounter("msq_engine_triangle_avoided_total", "")->Value(),
            stats.triangle_avoided);
  // The engine also observed its window histograms.
  EXPECT_EQ(reg.GetHistogram("msq_engine_window_micros",
                             obs::LatencyBoundariesMicros(), "")
                ->Count(),
            static_cast<uint64_t>(batch.size()));
}

TEST_F(ObsEngineTest, SingleQueryPublishesThroughSamePipeline) {
  MetricsRegistry reg;
  MetricsSink sink(&reg, nullptr);
  auto db = OpenDb(&sink);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(3, 5)).ok());
  const QueryStats& stats = (*db)->stats();
  EXPECT_GT(stats.dist_computations, 0u);
  EXPECT_EQ(reg.GetCounter("msq_engine_dist_computations_total", "")->Value(),
            stats.dist_computations);
}

TEST_F(ObsEngineTest, NullSinkDisablesPublication) {
  auto db = OpenDb(nullptr);
  ASSERT_TRUE(db.ok());
  std::vector<Query> batch;
  batch.push_back((*db)->MakeObjectKnnQuery(0, 5));
  ASSERT_TRUE((*db)->MultipleSimilarityQueryAll(batch).ok());
  // Work still happens and is charged in-band; nothing is exported.
  EXPECT_GT((*db)->stats().dist_computations, 0u);
}

TEST_F(ObsEngineTest, EngineSpansAppearInTrace) {
  MetricsRegistry reg;
  Tracer tracer;
  tracer.Enable();
  MetricsSink sink(&reg, &tracer);
  auto db = OpenDb(&sink);
  ASSERT_TRUE(db.ok());
  std::vector<Query> batch;
  for (ObjectId id = 0; id < 4; ++id) {
    batch.push_back((*db)->MakeObjectKnnQuery(id, 5));
  }
  ASSERT_TRUE((*db)->MultipleSimilarityQueryAll(batch).ok());
  tracer.Disable();
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("engine.window"), std::string::npos);
  EXPECT_NE(json.find("engine.page_scan"), std::string::npos);
  EXPECT_NE(json.find("engine.restore_buffer"), std::string::npos);
}

}  // namespace
}  // namespace msq
