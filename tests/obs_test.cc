// Tests for the observability layer: lock-free instruments and exact
// percentile math, the registry's Prometheus text rendering, the tracer's
// Chrome trace export, and the MetricsSink pipeline that publishes the
// paper's QueryStats cost counters.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace msq {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSink;
using obs::ScopedSpan;
using obs::TraceEvent;
using obs::Tracer;

// ---------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.Value(), 8);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -12);
}

// Named Obs* so the CI TSan job's test filter picks these up.
TEST(ObsConcurrencyTest, CounterAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads * kAddsPerThread));
}

// ---------------------------------------------------------------------
// Histogram percentile math (exact values; conventions of Percentile())
// ---------------------------------------------------------------------

TEST(HistogramTest, BucketAssignmentAndSum) {
  Histogram h({10.0, 20.0, 40.0});
  for (double v : {5.0, 15.0, 30.0, 100.0}) h.Observe(v);
  const auto snap = h.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 150.0);
}

TEST(HistogramTest, PercentileExactValues) {
  Histogram h({10.0, 20.0, 40.0});
  for (double v : {5.0, 15.0, 30.0, 100.0}) h.Observe(v);
  // rank = p/100 * 4; linear interpolation inside the holding bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(25), 10.0);  // rank 1 = top of bucket [0,10]
  EXPECT_DOUBLE_EQ(h.Percentile(50), 20.0);  // rank 2 = top of bucket (10,20]
  EXPECT_DOUBLE_EQ(h.Percentile(75), 40.0);  // rank 3 = top of bucket (20,40]
  // rank 4 lands in the +Inf bucket: the histogram cannot resolve beyond
  // its last finite boundary.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 40.0);
  EXPECT_NEAR(h.Percentile(0), 0.0, 1e-9);
}

TEST(HistogramTest, PercentileSingleBucketInterpolatesFromZero) {
  Histogram h({100.0});
  h.Observe(50.0);
  // One sample in [0, 100]: p99 -> rank 0.99 -> 99.0 exactly.
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
}

TEST(HistogramTest, PercentileEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, PercentileOverflowOnlyReturnsLastFiniteBoundary) {
  Histogram h({10.0});
  h.Observe(1e9);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({10.0});
  h.Observe(5.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(ObsConcurrencyTest, HistogramObservesAreLossless) {
  Histogram h(obs::LatencyBoundariesMicros());
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        h.Observe(static_cast<double>(t * 131 + i % 977));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kObsPerThread));
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, ResolutionIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("test_total", "help");
  Counter* b = reg.GetCounter("test_total", "help");
  EXPECT_EQ(a, b);
  // Distinct labels are distinct cells of the same family.
  Counter* x = reg.GetCounter("labeled_total", "help", "reason=\"a\"");
  Counter* y = reg.GetCounter("labeled_total", "help", "reason=\"b\"");
  EXPECT_NE(x, y);
  EXPECT_EQ(x, reg.GetCounter("labeled_total", "help", "reason=\"a\""));
}

TEST(MetricsRegistryTest, RenderPrometheusText) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total", "Requests served")->Add(3);
  reg.GetGauge("queue_depth", "Queued items")->Set(-2);
  Histogram* h =
      reg.GetHistogram("latency_micros", {1.0, 10.0}, "Request latency");
  h->Observe(0.5);
  h->Observe(5.0);
  reg.GetCounter("flushes_total", "Flushes", "reason=\"size\"")->Add(7);

  const std::string text = reg.RenderPrometheusText();
  EXPECT_NE(text.find("# HELP requests_total Requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_micros histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_micros_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_micros_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_micros_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_micros_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("flushes_total{reason=\"size\"} 7\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ResetValuesKeepsInstruments) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("will_reset_total", "help");
  c->Add(9);
  reg.ResetValues();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(reg.GetCounter("will_reset_total", "help"), c);
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "test.span", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, EnabledSpanIsRecordedWithArgs) {
  Tracer tracer;
  tracer.Enable();
  {
    ScopedSpan span(&tracer, "test.span", "test");
    EXPECT_TRUE(span.active());
    span.AddArg("m", 32.0);
  }
  tracer.Disable();
  ASSERT_EQ(tracer.size(), 1u);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"m\":32"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TracerTest, BoundedBufferDropsAndCounts) {
  Tracer tracer(/*max_events=*/2);
  tracer.Enable();
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.name = "e";
    event.category = "test";
    tracer.Record(event);
  }
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, WriteChromeTraceProducesFile) {
  Tracer tracer;
  tracer.Enable();
  {
    ScopedSpan span(&tracer, "io", "test");
  }
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {0};
  const size_t read = std::fread(buf, 1, 1, f);
  std::fclose(f);
  ASSERT_EQ(read, 1u);
  EXPECT_EQ(buf[0], '{');
}

// ---------------------------------------------------------------------
// MetricsSink: the QueryStats -> registry pipeline
// ---------------------------------------------------------------------

TEST(MetricsSinkTest, PublishQueryStatsMapsEveryField) {
  MetricsRegistry reg;
  MetricsSink sink(&reg, nullptr);
  QueryStats delta;
  delta.dist_computations = 1;
  delta.matrix_dist_computations = 2;
  delta.triangle_tries = 3;
  delta.triangle_avoided = 4;
  delta.random_page_reads = 5;
  delta.seq_page_reads = 6;
  delta.buffer_hits = 7;
  delta.pages_skipped_buffered = 8;
  delta.queries_completed = 9;
  delta.answers_produced = 10;
  sink.PublishQueryStats(delta);
  sink.PublishQueryStats(delta);  // counters accumulate

  const auto value = [&](const char* name) {
    return reg.GetCounter(name, "")->Value();
  };
  EXPECT_EQ(value("msq_engine_dist_computations_total"), 2u);
  EXPECT_EQ(value("msq_engine_matrix_dist_computations_total"), 4u);
  EXPECT_EQ(value("msq_engine_triangle_tries_total"), 6u);
  EXPECT_EQ(value("msq_engine_triangle_avoided_total"), 8u);
  EXPECT_EQ(value("msq_engine_random_page_reads_total"), 10u);
  EXPECT_EQ(value("msq_engine_seq_page_reads_total"), 12u);
  EXPECT_EQ(value("msq_engine_buffer_hits_total"), 14u);
  EXPECT_EQ(value("msq_engine_pages_skipped_buffered_total"), 16u);
  EXPECT_EQ(value("msq_engine_queries_completed_total"), 18u);
  EXPECT_EQ(value("msq_engine_answers_produced_total"), 20u);
}

TEST(MetricsSinkTest, NullRegistryIsNoOp) {
  MetricsSink sink(nullptr, nullptr);
  QueryStats delta;
  delta.dist_computations = 1;
  sink.PublishQueryStats(delta);  // must not crash
  EXPECT_EQ(sink.registry(), nullptr);
  EXPECT_EQ(sink.tracer(), nullptr);
}

// ---------------------------------------------------------------------
// Engine integration: one pipeline from QueryStats to the registry
// ---------------------------------------------------------------------

class ObsEngineTest : public ::testing::Test {
 protected:
  StatusOr<std::unique_ptr<MetricDatabase>> OpenDb(
      const MetricsSink* sink) {
    Dataset data = MakeUniformDataset(600, 8, /*seed=*/5);
    DatabaseOptions options;
    options.backend = BackendKind::kLinearScan;
    options.multi.metrics = sink;
    return MetricDatabase::Open(std::move(data),
                                std::make_shared<EuclideanMetric>(), options);
  }
};

TEST_F(ObsEngineTest, ExecuteAllPublishesStatsToLocalRegistry) {
  MetricsRegistry reg;
  MetricsSink sink(&reg, nullptr);
  auto db = OpenDb(&sink);
  ASSERT_TRUE(db.ok());
  std::vector<Query> batch;
  for (ObjectId id = 0; id < 8; ++id) {
    batch.push_back((*db)->MakeObjectKnnQuery(id, 5));
  }
  ASSERT_TRUE((*db)->MultipleSimilarityQueryAll(batch).ok());

  // The registry's counters must agree exactly with the database's in-band
  // QueryStats — both sides of the one pipeline.
  const QueryStats& stats = (*db)->stats();
  EXPECT_GT(stats.dist_computations, 0u);
  EXPECT_EQ(reg.GetCounter("msq_engine_dist_computations_total", "")->Value(),
            stats.dist_computations);
  EXPECT_EQ(reg.GetCounter("msq_engine_queries_completed_total", "")->Value(),
            stats.queries_completed);
  EXPECT_EQ(reg.GetCounter("msq_engine_triangle_avoided_total", "")->Value(),
            stats.triangle_avoided);
  // The engine also observed its window histograms.
  EXPECT_EQ(reg.GetHistogram("msq_engine_window_micros",
                             obs::LatencyBoundariesMicros(), "")
                ->Count(),
            static_cast<uint64_t>(batch.size()));
}

TEST_F(ObsEngineTest, SingleQueryPublishesThroughSamePipeline) {
  MetricsRegistry reg;
  MetricsSink sink(&reg, nullptr);
  auto db = OpenDb(&sink);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(3, 5)).ok());
  const QueryStats& stats = (*db)->stats();
  EXPECT_GT(stats.dist_computations, 0u);
  EXPECT_EQ(reg.GetCounter("msq_engine_dist_computations_total", "")->Value(),
            stats.dist_computations);
}

TEST_F(ObsEngineTest, NullSinkDisablesPublication) {
  auto db = OpenDb(nullptr);
  ASSERT_TRUE(db.ok());
  std::vector<Query> batch;
  batch.push_back((*db)->MakeObjectKnnQuery(0, 5));
  ASSERT_TRUE((*db)->MultipleSimilarityQueryAll(batch).ok());
  // Work still happens and is charged in-band; nothing is exported.
  EXPECT_GT((*db)->stats().dist_computations, 0u);
}

// ---------------------------------------------------------------------
// p999 percentile math (the tail the load harness reports)
// ---------------------------------------------------------------------

TEST(HistogramTest, P999ExactValues) {
  Histogram h({10.0, 20.0});
  // 1000 samples: 999 in [0,10], 1 in (10,20]. rank(p999) = 0.999 * 1000
  // = 999 = exactly the top of the first bucket.
  for (int i = 0; i < 999; ++i) h.Observe(5.0);
  h.Observe(15.0);
  EXPECT_NEAR(h.Percentile(99.9), 10.0, 1e-9);
  // p99.95: rank 999.5 lands halfway through the second bucket's single
  // sample -> 10 + 10 * 0.5.
  EXPECT_NEAR(h.Percentile(99.95), 15.0, 1e-9);
}

TEST(MetricsRegistryTest, RenderIncludesSummaryQuantiles) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat_micros", {10.0, 100.0}, "latency");
  for (int i = 0; i < 100; ++i) h->Observe(5.0);
  const std::string text = reg.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE lat_micros_summary gauge"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_summary{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_summary{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_summary{quantile=\"0.999\"}"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SummaryQuantilesKeepCellLabels) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("comp_seconds", {1.0}, "components",
                                  "component=\"page_io\"");
  h->Observe(0.5);
  const std::string text = reg.RenderPrometheusText();
  EXPECT_NE(
      text.find(
          "comp_seconds_summary{component=\"page_io\",quantile=\"0.999\"}"),
      std::string::npos);
}

// ---------------------------------------------------------------------
// SlidingWindowHistogram
// ---------------------------------------------------------------------

using obs::SlidingWindowHistogram;

TEST(ObsWindowTest, EmptyWindowSnapsToZero) {
  SlidingWindowHistogram w({10.0, 100.0}, std::chrono::seconds(8), 4);
  const auto snap = w.SnapAtMicros(0);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Percentile(99), 0.0);
}

TEST(ObsWindowTest, ObservationsInsideWindowAreMerged) {
  SlidingWindowHistogram w({10.0, 100.0}, std::chrono::seconds(8), 4);
  ASSERT_EQ(w.slot_width_micros(), 2'000'000);
  w.ObserveAtMicros(5.0, 0);          // epoch 0
  w.ObserveAtMicros(50.0, 2'000'000);  // epoch 1
  w.ObserveAtMicros(50.0, 3'000'000);  // epoch 1
  const auto snap = w.SnapAtMicros(3'500'000);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 105.0);
}

TEST(ObsWindowTest, OldSamplesAgeOutOfTheWindow) {
  SlidingWindowHistogram w({10.0, 100.0}, std::chrono::seconds(8), 4);
  w.ObserveAtMicros(5.0, 0);  // epoch 0
  // 4 slots: at epoch 4 (t=8s) the merge covers epochs [1, 4] only.
  EXPECT_EQ(w.SnapAtMicros(7'999'999).count, 1u);  // epoch 3: [0,3] covers it
  EXPECT_EQ(w.SnapAtMicros(8'000'000).count, 0u);  // epoch 4: aged out
}

TEST(ObsWindowTest, SlotIsRecycledAfterFullRotation) {
  SlidingWindowHistogram w({10.0}, std::chrono::seconds(4), 4);
  ASSERT_EQ(w.slot_width_micros(), 1'000'000);
  w.ObserveAtMicros(1.0, 0);  // epoch 0, slot 0
  // Epoch 4 reuses slot 0; the old epoch-0 sample must be cleared, not
  // merged into epoch 4's population.
  w.ObserveAtMicros(2.0, 4'000'000);
  const auto snap = w.SnapAtMicros(4'000'000);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 2.0);
}

TEST(ObsWindowTest, ClockSkipAcrossManyEpochsDropsAncientSlots) {
  SlidingWindowHistogram w({10.0}, std::chrono::seconds(4), 4);
  w.ObserveAtMicros(1.0, 0);
  // Jump 100 epochs ahead: every live slot is older than the whole ring.
  const auto snap = w.SnapAtMicros(100'000'000);
  EXPECT_EQ(snap.count, 0u);
  // New observations after the skip land normally.
  w.ObserveAtMicros(3.0, 100'000'000);
  EXPECT_EQ(w.SnapAtMicros(100'000'000).count, 1u);
}

TEST(ObsWindowTest, StaleObservationPastTheRingIsDropped) {
  SlidingWindowHistogram w({10.0}, std::chrono::seconds(4), 4);
  w.ObserveAtMicros(1.0, 50'000'000);  // epoch 50
  w.ObserveAtMicros(2.0, 1'000'000);   // epoch 1: older than the ring, drop
  const auto snap = w.SnapAtMicros(50'000'000);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.0);
}

TEST(ObsWindowTest, ResetForgetsEverything) {
  SlidingWindowHistogram w({10.0}, std::chrono::seconds(4), 4);
  w.ObserveAtMicros(1.0, 0);
  w.Reset();
  EXPECT_EQ(w.SnapAtMicros(0).count, 0u);
}

TEST(ObsWindowTest, RegistryRendersSlidingHistogramWithSummary) {
  MetricsRegistry reg;
  SlidingWindowHistogram* w = reg.GetSlidingHistogram(
      "win_micros", {10.0, 100.0}, std::chrono::seconds(10), "windowed");
  w->Observe(5.0);
  const std::string text = reg.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE win_micros histogram"), std::string::npos);
  EXPECT_NE(text.find("win_micros_count 1"), std::string::npos);
  EXPECT_NE(text.find("win_micros_summary{quantile=\"0.999\"}"),
            std::string::npos);
  // Idempotent resolution, same cell.
  EXPECT_EQ(reg.GetSlidingHistogram("win_micros", {}, std::chrono::seconds(1)),
            w);
}

// Concurrent writers race slot rotation: no sample may be double-counted
// and the total within the live window must be exact when every write
// lands in the covered epochs. Named Obs* for the CI TSan filter.
TEST(ObsWindowConcurrencyTest, ConcurrentObservesAreLossless) {
  SlidingWindowHistogram w(obs::LatencyBoundariesMicros(),
                           std::chrono::seconds(60), 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // All writes stay in epoch 0 of a 15 s slot: no rotation races,
        // the count must be exact.
        w.ObserveAtMicros(static_cast<double>((t * kPerThread + i) % 1000),
                          1000);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(w.SnapAtMicros(2000).count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsWindowConcurrencyTest, ConcurrentRotationNeverDoubleCounts) {
  SlidingWindowHistogram w({1000.0}, std::chrono::seconds(4), 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<int64_t> clock{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        // Advance the fake clock so rotations keep happening while other
        // threads are mid-observe; the documented benign race may *drop*
        // a sample at a slot boundary but must never double-count one.
        const int64_t now = clock.fetch_add(137, std::memory_order_relaxed);
        w.ObserveAtMicros(1.0, now);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = w.SnapAtMicros(clock.load(std::memory_order_relaxed));
  EXPECT_LE(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(snap.count));
}

// ---------------------------------------------------------------------
// Latency attribution vocabulary
// ---------------------------------------------------------------------

TEST(AttributionTest, ComponentNamesAndAccounting) {
  EXPECT_STREQ(obs::LatencyComponentName(obs::LatencyComponent::kQueueWait),
               "queue_wait");
  EXPECT_STREQ(obs::LatencyComponentName(obs::LatencyComponent::kMerge),
               "merge");
  obs::BatchAttribution attr;
  attr.batch_size = 4;
  attr.component(obs::LatencyComponent::kQueueWait) = 100.0;  // summed
  attr.component(obs::LatencyComponent::kPageIo) = 10.0;      // per batch
  attr.component(obs::LatencyComponent::kKernel) = 5.0;
  EXPECT_DOUBLE_EQ(attr.AttributedMicros(), 100.0 + 4 * 15.0);
}

TEST_F(ObsEngineTest, EngineSpansAppearInTrace) {
  MetricsRegistry reg;
  Tracer tracer;
  tracer.Enable();
  MetricsSink sink(&reg, &tracer);
  auto db = OpenDb(&sink);
  ASSERT_TRUE(db.ok());
  std::vector<Query> batch;
  for (ObjectId id = 0; id < 4; ++id) {
    batch.push_back((*db)->MakeObjectKnnQuery(id, 5));
  }
  ASSERT_TRUE((*db)->MultipleSimilarityQueryAll(batch).ok());
  tracer.Disable();
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("engine.window"), std::string::npos);
  EXPECT_NE(json.find("engine.page_scan"), std::string::npos);
  EXPECT_NE(json.find("engine.restore_buffer"), std::string::npos);
}

}  // namespace
}  // namespace msq
