// Tests of OPTICS and the similarity self-join.

#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "mining/dbscan.h"
#include "mining/optics.h"
#include "mining/similarity_join.h"

namespace msq {
namespace {

std::unique_ptr<MetricDatabase> OpenDb(const Dataset& dataset,
                                       BackendKind kind =
                                           BackendKind::kLinearScan) {
  DatabaseOptions options;
  options.backend = kind;
  options.page_size_bytes = 2048;
  auto db = MetricDatabase::Open(dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// ---------------------------------------------------------------------
// OPTICS
// ---------------------------------------------------------------------

TEST(OpticsTest, OrderingIsAPermutationOfAllObjects) {
  Dataset dataset = MakeGaussianClustersDataset(500, 4, 4, 0.03, 1201);
  auto db = OpenDb(dataset);
  OpticsParams params;
  params.eps = 0.2;
  params.min_pts = 5;
  auto got = RunOptics(db.get(), params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->ordering.size(), dataset.size());
  std::set<ObjectId> unique(got->ordering.begin(), got->ordering.end());
  EXPECT_EQ(unique.size(), dataset.size());
  EXPECT_EQ(got->reachability.size(), dataset.size());
  EXPECT_EQ(got->core_distance.size(), dataset.size());
}

TEST(OpticsTest, ReachabilityIsAtLeastCoreDistanceOfPredecessors) {
  Dataset dataset = MakeGaussianClustersDataset(400, 3, 3, 0.03, 1203);
  auto db = OpenDb(dataset);
  OpticsParams params;
  params.eps = 0.3;
  params.min_pts = 4;
  auto got = RunOptics(db.get(), params);
  ASSERT_TRUE(got.ok());
  // Reachable objects (finite reachability) must have been reached within
  // the generating radius.
  for (size_t i = 0; i < got->ordering.size(); ++i) {
    if (!std::isinf(got->reachability[i])) {
      EXPECT_LE(got->reachability[i], /* max core+dist */ 2 * params.eps);
      EXPECT_GT(got->reachability[i], 0.0);
    }
    if (!std::isinf(got->core_distance[i])) {
      EXPECT_LE(got->core_distance[i], params.eps);
    }
  }
}

TEST(OpticsTest, ExtractedClusteringMatchesDbscanClusterCount) {
  // The clustering extracted at eps' from the OPTICS ordering partitions
  // the same density-connected components as DBSCAN at eps'.
  Dataset dataset = MakeGaussianClustersDataset(600, 3, 4, 0.015, 1205);
  auto db = OpenDb(dataset);
  const double eps = 0.06;
  const size_t min_pts = 5;

  OpticsParams optics_params;
  optics_params.eps = 0.2;  // generating radius above the extraction radius
  optics_params.min_pts = min_pts;
  auto optics = RunOptics(db.get(), optics_params);
  ASSERT_TRUE(optics.ok());
  // Note: extraction uses stored core distances, which were computed with
  // the generating eps; for eps' <= eps they agree where it matters.
  const std::vector<int32_t> extracted = optics->ExtractClustering(eps);

  DbscanParams dbscan_params;
  dbscan_params.eps = eps;
  dbscan_params.min_pts = min_pts;
  auto db2 = OpenDb(dataset);
  auto dbscan = RunDbscan(db2.get(), dbscan_params);
  ASSERT_TRUE(dbscan.ok());

  std::set<int32_t> optics_clusters, dbscan_clusters;
  for (int32_t c : extracted) {
    if (c >= 0) optics_clusters.insert(c);
  }
  for (int32_t c : dbscan->cluster_of) {
    if (c >= 0) dbscan_clusters.insert(c);
  }
  EXPECT_EQ(optics_clusters.size(), dbscan_clusters.size());
  // Core objects must agree on cluster membership up to renaming: two
  // objects in the same DBSCAN cluster and both clustered by OPTICS must
  // share the OPTICS cluster.
  std::map<int32_t, std::set<int32_t>> mapping;
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    if (dbscan->cluster_of[id] >= 0 && extracted[id] >= 0) {
      mapping[dbscan->cluster_of[id]].insert(extracted[id]);
    }
  }
  for (const auto& [dbscan_cluster, optics_ids] : mapping) {
    EXPECT_EQ(optics_ids.size(), 1u)
        << "DBSCAN cluster " << dbscan_cluster << " split by OPTICS";
  }
}

TEST(OpticsTest, SingleAndMultipleModesProduceIdenticalOrderings) {
  Dataset dataset = MakeGaussianClustersDataset(500, 4, 4, 0.03, 1207);
  OpticsParams params;
  params.eps = 0.15;
  params.min_pts = 4;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = RunOptics(db_single.get(), params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = RunOptics(db_multi.get(), params);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(single->ordering, multi->ordering);
  EXPECT_EQ(single->reachability, multi->reachability);
  EXPECT_EQ(single->core_distance, multi->core_distance);
  // And the batched form must read fewer pages.
  EXPECT_LT(db_multi->stats().TotalPageReads(),
            db_single->stats().TotalPageReads());
}

TEST(OpticsTest, WorksOnXTree) {
  Dataset dataset = MakeGaussianClustersDataset(400, 4, 3, 0.03, 1209);
  OpticsParams params;
  params.eps = 0.15;
  params.min_pts = 4;
  auto scan_db = OpenDb(dataset, BackendKind::kLinearScan);
  auto reference = RunOptics(scan_db.get(), params);
  ASSERT_TRUE(reference.ok());
  auto xtree_db = OpenDb(dataset, BackendKind::kXTree);
  auto got = RunOptics(xtree_db.get(), params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ordering, reference->ordering);
}

TEST(OpticsTest, RejectsBadParameters) {
  Dataset dataset = MakeUniformDataset(100, 3, 1211);
  auto db = OpenDb(dataset);
  OpticsParams params;
  params.eps = 0.0;
  EXPECT_TRUE(RunOptics(db.get(), params).status().IsInvalidArgument());
  params.eps = 0.1;
  params.min_pts = 0;
  EXPECT_TRUE(RunOptics(db.get(), params).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Similarity self-join
// ---------------------------------------------------------------------

std::vector<JoinPair> BruteForceJoin(const Dataset& ds, double eps) {
  EuclideanMetric metric;
  std::vector<JoinPair> pairs;
  for (ObjectId a = 0; a < ds.size(); ++a) {
    for (ObjectId b = a + 1; b < ds.size(); ++b) {
      const double d = metric.Distance(ds.object(a), ds.object(b));
      if (d <= eps) pairs.push_back({a, b, d});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(SimilarityJoinTest, MatchesBruteForce) {
  Dataset dataset = MakeGaussianClustersDataset(400, 3, 4, 0.03, 1213);
  auto db = OpenDb(dataset);
  SimilarityJoinParams params;
  params.eps = 0.08;
  auto got = SimilaritySelfJoin(db.get(), params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const std::vector<JoinPair> expected = BruteForceJoin(dataset, 0.08);
  ASSERT_EQ(got->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*got)[i].first, expected[i].first);
    EXPECT_EQ((*got)[i].second, expected[i].second);
    EXPECT_NEAR((*got)[i].distance, expected[i].distance, 1e-9);
  }
}

TEST(SimilarityJoinTest, SingleAndMultipleModesAgree) {
  Dataset dataset = MakeUniformDataset(300, 4, 1215);
  SimilarityJoinParams params;
  params.eps = 0.25;
  params.use_multiple = false;
  auto db_single = OpenDb(dataset);
  auto single = SimilaritySelfJoin(db_single.get(), params);
  ASSERT_TRUE(single.ok());
  params.use_multiple = true;
  auto db_multi = OpenDb(dataset);
  auto multi = SimilaritySelfJoin(db_multi.get(), params);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(single->size(), multi->size());
  for (size_t i = 0; i < single->size(); ++i) {
    EXPECT_TRUE((*single)[i] == (*multi)[i]);
  }
  EXPECT_LT(db_multi->stats().TotalPageReads(),
            db_single->stats().TotalPageReads());
}

TEST(SimilarityJoinTest, EmptyJoinAtTinyRadius) {
  Dataset dataset = MakeUniformDataset(200, 6, 1217);
  auto db = OpenDb(dataset);
  SimilarityJoinParams params;
  params.eps = 1e-9;
  auto got = SimilaritySelfJoin(db.get(), params);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(SimilarityJoinTest, WorksOnMTree) {
  Dataset dataset = MakeGaussianClustersDataset(300, 3, 3, 0.03, 1219);
  auto db = OpenDb(dataset, BackendKind::kMTree);
  SimilarityJoinParams params;
  params.eps = 0.08;
  auto got = SimilaritySelfJoin(db.get(), params);
  ASSERT_TRUE(got.ok());
  const std::vector<JoinPair> expected = BruteForceJoin(dataset, 0.08);
  EXPECT_EQ(got->size(), expected.size());
}

}  // namespace
}  // namespace msq
