// Tests of the single-file block store: extent round-trips, the object
// table, CRC verification over padded extents, superblock validation, and
// the read-fault hook used by the real-I/O failure-path tests.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "storage/page_file.h"

namespace msq {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string Blob(size_t n, char seed) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(seed + i % 31);
  }
  return s;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The standard check value for CRC-32/IEEE.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Chaining equals one-shot.
  const std::string s = "hello, page file";
  const uint32_t once = Crc32(s.data(), s.size());
  const uint32_t chained = Crc32(s.data() + 4, s.size() - 4,
                                 Crc32(s.data(), 4));
  EXPECT_EQ(once, chained);
}

TEST(PageFileTest, ExtentAndObjectRoundTrip) {
  const std::string path = TempPath("msq_pf_roundtrip.msq");
  PageFileExtent big_extent;
  {
    auto created = PageFile::Create(path, 512);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    PageFile& pf = **created;
    // Spans multiple blocks and ends off the block boundary.
    const std::string big = Blob(3 * 512 + 77, 'a');
    auto ext = pf.AppendExtent(big.data(), big.size());
    ASSERT_TRUE(ext.ok());
    EXPECT_EQ(ext->first_block, 1u);
    EXPECT_EQ(ext->num_blocks, 4u);
    EXPECT_EQ(ext->byte_length, big.size());
    big_extent = *ext;
    ASSERT_TRUE(pf.PutObject("meta", "tiny payload").ok());
    ASSERT_TRUE(pf.PutObject("index", Blob(1000, 'x')).ok());
    // Duplicate names are rejected.
    EXPECT_TRUE(pf.PutObject("meta", "again").IsInvalidArgument());
    ASSERT_TRUE(pf.Sync().ok());

    std::string back;
    ASSERT_TRUE(pf.ReadExtent(*ext, &back).ok());
    EXPECT_EQ(back, big);
  }
  {
    auto opened = PageFile::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    PageFile& pf = **opened;
    EXPECT_EQ(pf.block_size(), 512u);
    EXPECT_TRUE(pf.HasObject("meta"));
    EXPECT_TRUE(pf.HasObject("index"));
    EXPECT_FALSE(pf.HasObject("nope"));
    std::string meta, index, big;
    ASSERT_TRUE(pf.GetObject("meta", &meta).ok());
    EXPECT_EQ(meta, "tiny payload");
    ASSERT_TRUE(pf.GetObject("index", &index).ok());
    EXPECT_EQ(index, Blob(1000, 'x'));
    EXPECT_TRUE(pf.GetObject("nope", &big).IsNotFound());
    // Anonymous extents survive reopen via their coordinates.
    ASSERT_TRUE(pf.ReadExtent(big_extent, &big).ok());
    EXPECT_EQ(big, Blob(3 * 512 + 77, 'a'));
    // Reads are measured.
    EXPECT_GT(pf.io_stats().reads, 0u);
    EXPECT_GT(pf.io_stats().read_bytes, 0u);
  }
  std::remove(path.c_str());
}

TEST(PageFileTest, ReopenedFileIsReadOnly) {
  const std::string path = TempPath("msq_pf_readonly.msq");
  {
    auto created = PageFile::Create(path, 512);
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->PutObject("a", "payload").ok());
    ASSERT_TRUE((*created)->Sync().ok());
  }
  auto opened = PageFile::Open(path);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE((*opened)->PutObject("b", "more").IsNotSupported());
  EXPECT_TRUE((*opened)->AppendExtent("x", 1).status().IsNotSupported());
  EXPECT_TRUE((*opened)->Sync().IsNotSupported());
  std::remove(path.c_str());
}

TEST(PageFileTest, UnsyncedFileDoesNotOpen) {
  const std::string path = TempPath("msq_pf_unsynced.msq");
  {
    auto created = PageFile::Create(path, 512);
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->PutObject("a", "payload").ok());
    // No Sync: superblock never written.
  }
  EXPECT_TRUE(PageFile::Open(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(PageFileTest, EveryBitFlipIsCorruption) {
  const std::string path = TempPath("msq_pf_bitflip.msq");
  {
    auto created = PageFile::Create(path, 512);
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->PutObject("blob", Blob(700, 'q')).ok());
    ASSERT_TRUE((*created)->Sync().ok());
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Flip one bit at a sweep of offsets covering superblock, data blocks,
  // and object table; every variant must fail to open or fail to read —
  // with Corruption (version-field flips may read as NotSupported only if
  // the CRC still matched, which a single flip cannot achieve).
  for (size_t off = 0; off < bytes.size(); off += 41) {
    std::string mutated = bytes;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x10);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    auto opened = PageFile::Open(path);
    if (!opened.ok()) {
      EXPECT_TRUE(opened.status().IsCorruption())
          << "offset " << off << ": " << opened.status().ToString();
      continue;
    }
    std::string payload;
    const Status st = (*opened)->GetObject("blob", &payload);
    EXPECT_TRUE(st.IsCorruption())
        << "offset " << off << ": " << st.ToString();
  }
  std::remove(path.c_str());
}

TEST(PageFileTest, EveryTruncationIsCorruption) {
  const std::string path = TempPath("msq_pf_trunc.msq");
  {
    auto created = PageFile::Create(path, 512);
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->PutObject("blob", Blob(1500, 'z')).ok());
    ASSERT_TRUE((*created)->Sync().ok());
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  for (size_t size = 0; size < bytes.size(); size += 97) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(size));
    }
    auto opened = PageFile::Open(path);
    ASSERT_FALSE(opened.ok()) << "size " << size;
    EXPECT_TRUE(opened.status().IsCorruption())
        << "size " << size << ": " << opened.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(PageFileTest, TrailingGarbageIsCorruption) {
  const std::string path = TempPath("msq_pf_trailing.msq");
  {
    auto created = PageFile::Create(path, 512);
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->PutObject("blob", "x").ok());
    ASSERT_TRUE((*created)->Sync().ok());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra bytes the superblock does not know about";
  }
  EXPECT_TRUE(PageFile::Open(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(PageFileTest, ReadFaultHookFailsReads) {
  const std::string path = TempPath("msq_pf_fault.msq");
  {
    auto created = PageFile::Create(path, 512);
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->PutObject("blob", Blob(600, 'f')).ok());
    ASSERT_TRUE((*created)->Sync().ok());
  }
  auto opened = PageFile::Open(path);
  ASSERT_TRUE(opened.ok());
  PageFile& pf = **opened;
  int calls = 0;
  pf.SetReadFaultHook([&calls](uint64_t) {
    ++calls;
    return Status::IOError("injected");
  });
  std::string out;
  EXPECT_TRUE(pf.GetObject("blob", &out).IsIOError());
  EXPECT_EQ(calls, 1);
  pf.SetReadFaultHook(nullptr);
  EXPECT_TRUE(pf.GetObject("blob", &out).ok());
  std::remove(path.c_str());
}

TEST(PageFileTest, RejectsBadBlockSizeAndMissingFile) {
  EXPECT_TRUE(PageFile::Create(TempPath("msq_pf_bad.msq"), 64)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PageFile::Open("/nonexistent/msq_pf_none.msq")
                  .status()
                  .IsIOError());
}

}  // namespace
}  // namespace msq
