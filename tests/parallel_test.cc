// Tests of the shared-nothing parallel substrate: declustering properties,
// global answer correctness for any server count and backend, and the
// cost-accounting surface the parallel benches rely on.

#include <memory>
#include <numeric>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "parallel/cluster.h"
#include "parallel/decluster.h"
#include "parallel/thread_pool.h"
#include "robust/fault_injector.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

// ---------------------------------------------------------------------
// Decluster
// ---------------------------------------------------------------------

class DeclusterStrategyTest
    : public ::testing::TestWithParam<DeclusterStrategy> {};

TEST_P(DeclusterStrategyTest, PartitionsAreCompleteAndDisjoint) {
  auto got = Decluster(1000, 7, GetParam(), 42);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 7u);
  std::set<ObjectId> seen;
  for (const auto& part : *got) {
    EXPECT_FALSE(part.empty());
    for (ObjectId id : part) {
      EXPECT_LT(id, 1000u);
      EXPECT_TRUE(seen.insert(id).second) << "object assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST_P(DeclusterStrategyTest, RoughBalance) {
  auto got = Decluster(10000, 8, GetParam(), 43);
  ASSERT_TRUE(got.ok());
  for (const auto& part : *got) {
    EXPECT_GT(part.size(), 10000u / 8 / 2);
    EXPECT_LT(part.size(), 10000u / 8 * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, DeclusterStrategyTest,
                         ::testing::Values(DeclusterStrategy::kRoundRobin,
                                           DeclusterStrategy::kRandom,
                                           DeclusterStrategy::kChunked),
                         [](const auto& info) {
                           return DeclusterStrategyName(info.param);
                         });

TEST(DeclusterTest, RejectsDegenerateInputs) {
  EXPECT_TRUE(Decluster(10, 0, DeclusterStrategy::kRoundRobin, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Decluster(3, 5, DeclusterStrategy::kRoundRobin, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(DeclusterTest, RoundRobinIsDeterministicInterleave) {
  auto got = Decluster(10, 3, DeclusterStrategy::kRoundRobin, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0], (std::vector<ObjectId>{0, 3, 6, 9}));
  EXPECT_EQ((*got)[1], (std::vector<ObjectId>{1, 4, 7}));
  EXPECT_EQ((*got)[2], (std::vector<ObjectId>{2, 5, 8}));
}

// ---------------------------------------------------------------------
// SharedNothingCluster
// ---------------------------------------------------------------------

ClusterOptions MakeClusterOptions(size_t servers, BackendKind backend,
                                  bool threads = true) {
  ClusterOptions options;
  options.num_servers = servers;
  options.use_threads = threads;
  options.server_options.backend = backend;
  options.server_options.page_size_bytes = 2048;
  options.server_options.multi.max_batch_size = 512;
  return options;
}

std::vector<Query> GlobalKnnQueries(const Dataset& ds, size_t m, size_t k,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries;
  const auto ids = rng.SampleWithoutReplacement(ds.size(), m);
  for (uint64_t id : ids) {
    // Global query ids; points taken from the global dataset.
    queries.push_back(Query{static_cast<QueryId>(id),
                            ds.object(static_cast<ObjectId>(id)),
                            QueryType::Knn(k)});
  }
  return queries;
}

struct ParallelCase {
  size_t servers;
  BackendKind backend;
  const char* name;
};

class ParallelBackendTest : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelBackendTest, MergedAnswersMatchBruteForce) {
  Dataset dataset = MakeGaussianClustersDataset(1200, 5, 6, 0.05, 801);
  auto metric = std::make_shared<EuclideanMetric>();
  auto cluster = SharedNothingCluster::Create(
      dataset, metric, MakeClusterOptions(GetParam().servers,
                                          GetParam().backend));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  const auto queries = GlobalKnnQueries(dataset, 12, 8, 61);
  auto got = (*cluster)->ExecuteMultipleAll(queries);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    const AnswerSet expected = BruteForceQuery(dataset, *metric, queries[i]);
    EXPECT_TRUE(SameAnswers((*got)[i], expected)) << "query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParallelBackendTest,
    ::testing::Values(ParallelCase{1, BackendKind::kLinearScan, "s1_scan"},
                      ParallelCase{4, BackendKind::kLinearScan, "s4_scan"},
                      ParallelCase{7, BackendKind::kLinearScan, "s7_scan"},
                      ParallelCase{4, BackendKind::kXTree, "s4_xtree"},
                      ParallelCase{4, BackendKind::kMTree, "s4_mtree"}),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return info.param.name;
    });

// Regression guard for the coordinator's merge: with duplicated points the
// candidate lists carry runs of equal distances, and the merged kNN cut
// must land exactly where the single-server (distance, id) order puts it —
// for every declustering, since each one splits the tied copies across
// servers differently.
TEST(ParallelTest, KnnMergeBreaksDistanceTiesDeterministically) {
  constexpr size_t kDistinct = 50;
  constexpr size_t kCopies = 4;
  Rng rng(811);
  std::vector<Vec> objects;
  objects.reserve(kDistinct * kCopies);
  for (size_t i = 0; i < kDistinct; ++i) {
    Vec point = {rng.NextDouble(0.0, 1.0), rng.NextDouble(0.0, 1.0),
                 rng.NextDouble(0.0, 1.0)};
    for (size_t c = 0; c < kCopies; ++c) objects.push_back(point);
  }
  Dataset dataset(3, std::move(objects));
  auto metric = std::make_shared<EuclideanMetric>();

  std::vector<Query> queries;
  for (uint64_t i = 0; i < 6; ++i) {
    // k = 6 cuts through the middle of a 4-copy tie group (1 exact match
    // group of 4, then 2 of the next group's 4 copies).
    queries.push_back(Query{2000 + i,
                            dataset.object(static_cast<ObjectId>(i * 13)),
                            QueryType::Knn(6)});
  }

  for (DeclusterStrategy strategy :
       {DeclusterStrategy::kRoundRobin, DeclusterStrategy::kRandom,
        DeclusterStrategy::kChunked}) {
    ClusterOptions options = MakeClusterOptions(5, BackendKind::kLinearScan);
    options.strategy = strategy;
    auto cluster = SharedNothingCluster::Create(dataset, metric, options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    auto got = (*cluster)->ExecuteMultipleAll(queries);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    for (size_t i = 0; i < queries.size(); ++i) {
      const AnswerSet expected =
          BruteForceQuery(dataset, *metric, queries[i]);
      EXPECT_TRUE(SameAnswers((*got)[i], expected))
          << "strategy " << static_cast<int>(strategy) << " query " << i;
    }
  }
}

/// Bit-identical comparison — not SameAnswers' tolerance: failover must be
/// invisible, so ids, distances *and order* have to match exactly.
bool BitIdentical(const std::vector<AnswerSet>& a,
                  const std::vector<AnswerSet>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].distance != b[q][i].distance) {
        return false;
      }
    }
  }
  return true;
}

// The failover guarantee, against the merge's hardest input: duplicated
// points put runs of equal distances in every candidate list, and every
// declustering strategy splits the tie groups across servers differently.
// Whichever single server crashes, a 2-way replicated cluster must return
// answers bit-identical to the fault-free unreplicated run — replica
// databases are built over the same partition subsets, so the merge cannot
// tell who served a partition.
TEST(ParallelTest, FailoverMergeIsBitIdenticalAcrossStrategies) {
  constexpr size_t kDistinct = 50;
  constexpr size_t kCopies = 4;
  Rng rng(811);
  std::vector<Vec> objects;
  objects.reserve(kDistinct * kCopies);
  for (size_t i = 0; i < kDistinct; ++i) {
    Vec point = {rng.NextDouble(0.0, 1.0), rng.NextDouble(0.0, 1.0),
                 rng.NextDouble(0.0, 1.0)};
    for (size_t c = 0; c < kCopies; ++c) objects.push_back(point);
  }
  Dataset dataset(3, std::move(objects));
  auto metric = std::make_shared<EuclideanMetric>();
  std::vector<Query> queries;
  for (uint64_t i = 0; i < 6; ++i) {
    queries.push_back(Query{2000 + i,
                            dataset.object(static_cast<ObjectId>(i * 13)),
                            QueryType::Knn(6)});
  }

  for (DeclusterStrategy strategy :
       {DeclusterStrategy::kRoundRobin, DeclusterStrategy::kRandom,
        DeclusterStrategy::kChunked, DeclusterStrategy::kSpatial}) {
    SCOPED_TRACE(DeclusterStrategyName(strategy));
    ClusterOptions options = MakeClusterOptions(5, BackendKind::kLinearScan);
    options.strategy = strategy;

    // Fault-free, unreplicated reference.
    auto baseline = SharedNothingCluster::Create(dataset, metric, options);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    auto expected = (*baseline)->ExecuteMultipleAll(queries);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    for (size_t crashed = 0; crashed < 5; ++crashed) {
      ClusterOptions replicated = options;
      replicated.replication_factor = 2;
      robust::FaultPlan plan;
      plan.metrics = nullptr;
      std::vector<std::shared_ptr<robust::FaultInjector>> injectors;
      for (size_t i = 0; i < 5; ++i) {
        injectors.push_back(std::make_shared<robust::FaultInjector>(plan));
      }
      replicated.server_faults = injectors;
      auto cluster = SharedNothingCluster::Create(dataset, metric, replicated);
      ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
      injectors[crashed]->Crash();
      auto got = (*cluster)->ExecuteMultipleAll(queries);
      ASSERT_TRUE(got.ok())
          << "crashed server " << crashed << ": " << got.status().ToString();
      EXPECT_TRUE(BitIdentical(*got, *expected)) << "crashed " << crashed;
      EXPECT_GE((*cluster)->failovers(), 1u) << "crashed " << crashed;
    }
  }
}

TEST(ParallelTest, RangeQueriesMergeToGlobalResult) {
  Dataset dataset = MakeUniformDataset(900, 4, 803);
  auto metric = std::make_shared<EuclideanMetric>();
  auto cluster = SharedNothingCluster::Create(
      dataset, metric, MakeClusterOptions(5, BackendKind::kLinearScan));
  ASSERT_TRUE(cluster.ok());
  std::vector<Query> queries;
  Rng rng(805);
  for (uint64_t i = 0; i < 8; ++i) {
    queries.push_back(Query{1000 + i, dataset.object(rng.NextIndex(900)),
                            QueryType::Range(0.3)});
  }
  auto got = (*cluster)->ExecuteMultipleAll(queries);
  ASSERT_TRUE(got.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*got)[i],
                            BruteForceQuery(dataset, *metric, queries[i])));
  }
}

TEST(ParallelTest, ThreadedAndSequentialExecutionAgree) {
  Dataset dataset = MakeUniformDataset(800, 5, 807);
  auto metric = std::make_shared<EuclideanMetric>();
  const auto queries = GlobalKnnQueries(dataset, 10, 5, 63);
  auto threaded = SharedNothingCluster::Create(
      dataset, metric,
      MakeClusterOptions(4, BackendKind::kLinearScan, /*threads=*/true));
  auto sequential = SharedNothingCluster::Create(
      dataset, metric,
      MakeClusterOptions(4, BackendKind::kLinearScan, /*threads=*/false));
  ASSERT_TRUE(threaded.ok());
  ASSERT_TRUE(sequential.ok());
  auto got_t = (*threaded)->ExecuteMultipleAll(queries);
  auto got_s = (*sequential)->ExecuteMultipleAll(queries);
  ASSERT_TRUE(got_t.ok());
  ASSERT_TRUE(got_s.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*got_t)[i], (*got_s)[i]));
  }
  // The modeled cost is execution-order independent.
  EXPECT_DOUBLE_EQ((*threaded)->ModeledElapsedMillis(),
                   (*sequential)->ModeledElapsedMillis());
}

TEST(ParallelTest, ClustersShareOneThreadPool) {
  // Two clusters on one process-wide pool, queried from two threads at
  // once: answers must stay correct with far fewer workers than the total
  // server count (RunAll interleaves both clusters' server tasks).
  Dataset dataset = MakeUniformDataset(1000, 5, 817);
  auto metric = std::make_shared<EuclideanMetric>();
  ThreadPool pool(2);
  ClusterOptions options = MakeClusterOptions(4, BackendKind::kLinearScan);
  options.shared_pool = &pool;
  auto cluster_a = SharedNothingCluster::Create(dataset, metric, options);
  auto cluster_b = SharedNothingCluster::Create(dataset, metric, options);
  ASSERT_TRUE(cluster_a.ok());
  ASSERT_TRUE(cluster_b.ok());

  const auto queries_a = GlobalKnnQueries(dataset, 8, 5, 75);
  const auto queries_b = GlobalKnnQueries(dataset, 8, 7, 77);
  StatusOr<std::vector<AnswerSet>> got_a = Status::Internal("unset");
  StatusOr<std::vector<AnswerSet>> got_b = Status::Internal("unset");
  std::thread ta([&] { got_a = (*cluster_a)->ExecuteMultipleAll(queries_a); });
  std::thread tb([&] { got_b = (*cluster_b)->ExecuteMultipleAll(queries_b); });
  ta.join();
  tb.join();
  ASSERT_TRUE(got_a.ok()) << got_a.status().ToString();
  ASSERT_TRUE(got_b.ok()) << got_b.status().ToString();
  for (size_t i = 0; i < queries_a.size(); ++i) {
    EXPECT_TRUE(SameAnswers(
        (*got_a)[i], BruteForceQuery(dataset, *metric, queries_a[i])));
  }
  for (size_t i = 0; i < queries_b.size(); ++i) {
    EXPECT_TRUE(SameAnswers(
        (*got_b)[i], BruteForceQuery(dataset, *metric, queries_b[i])));
  }
}

TEST(ParallelTest, PerServerIoShrinksWithServerCount) {
  Dataset dataset = MakeUniformDataset(4000, 8, 809);
  auto metric = std::make_shared<EuclideanMetric>();
  const auto queries = GlobalKnnQueries(dataset, 10, 10, 65);
  uint64_t pages_s2 = 0, pages_s8 = 0;
  for (size_t s : {2, 8}) {
    auto cluster = SharedNothingCluster::Create(
        dataset, metric, MakeClusterOptions(s, BackendKind::kLinearScan));
    ASSERT_TRUE(cluster.ok());
    ASSERT_TRUE((*cluster)->ExecuteMultipleAll(queries).ok());
    uint64_t max_pages = 0;
    for (const QueryStats& st : (*cluster)->ServerStats()) {
      max_pages = std::max(max_pages, st.TotalPageReads());
    }
    (s == 2 ? pages_s2 : pages_s8) = max_pages;
  }
  EXPECT_LT(pages_s8, pages_s2);
}

TEST(ParallelTest, ElapsedIsMaxAndWorkIsSumOfServers) {
  Dataset dataset = MakeUniformDataset(1000, 5, 811);
  auto metric = std::make_shared<EuclideanMetric>();
  auto cluster = SharedNothingCluster::Create(
      dataset, metric, MakeClusterOptions(3, BackendKind::kLinearScan));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(
      (*cluster)->ExecuteMultipleAll(GlobalKnnQueries(dataset, 6, 4, 67)).ok());
  double sum = 0.0, max = 0.0;
  for (size_t i = 0; i < (*cluster)->num_servers(); ++i) {
    const double ms = (*cluster)->server(i).ModeledTotalMillis();
    sum += ms;
    max = std::max(max, ms);
  }
  EXPECT_DOUBLE_EQ((*cluster)->ModeledElapsedMillis(), max);
  EXPECT_DOUBLE_EQ((*cluster)->ModeledTotalWorkMillis(), sum);
}

TEST(ParallelTest, ResetAllClearsServerStats) {
  Dataset dataset = MakeUniformDataset(600, 4, 813);
  auto metric = std::make_shared<EuclideanMetric>();
  auto cluster = SharedNothingCluster::Create(
      dataset, metric, MakeClusterOptions(2, BackendKind::kLinearScan));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(
      (*cluster)->ExecuteMultipleAll(GlobalKnnQueries(dataset, 4, 3, 69)).ok());
  (*cluster)->ResetAll();
  for (const QueryStats& st : (*cluster)->ServerStats()) {
    EXPECT_EQ(st.TotalPageReads(), 0u);
    EXPECT_EQ(st.dist_computations, 0u);
  }
}

TEST(ParallelTest, EveryPartitionProducesWork) {
  Dataset dataset = MakeUniformDataset(2000, 6, 815);
  auto metric = std::make_shared<EuclideanMetric>();
  auto cluster = SharedNothingCluster::Create(
      dataset, metric, MakeClusterOptions(4, BackendKind::kLinearScan));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(
      (*cluster)->ExecuteMultipleAll(GlobalKnnQueries(dataset, 8, 5, 71)).ok());
  for (const QueryStats& st : (*cluster)->ServerStats()) {
    EXPECT_GT(st.dist_computations, 0u);
  }
}

}  // namespace
}  // namespace msq
