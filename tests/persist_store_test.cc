// Tests of the persistent database path: serialization hardening, the
// buffer pool's Lookup/Admit/Evict split, the DataLayout store mode, and
// MetricDatabase::Save / Open(path) round trips — including a corruption
// corpus (bit flips and truncations must always surface as
// Status::Corruption, never as a crash or a wrong answer).

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "common/serialize.h"
#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "storage/buffer_pool.h"
#include "storage/data_layout.h"
#include "storage/page_file.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::SameAnswers;

// Per-process suffix: ctest runs each test case as its own concurrent
// process, so a shared fixed name would race across cases.
std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "." + std::to_string(::getpid())))
      .string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- serialization hardening -----------------------------------------

TEST(SerializeHardeningTest, WritersReportStreamFailure) {
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_TRUE(WriteU32(out, 1).IsIOError());
  EXPECT_TRUE(WriteU64(out, 1).IsIOError());
  EXPECT_TRUE(WriteF64(out, 1.0).IsIOError());
  EXPECT_TRUE(WriteString(out, "x").IsIOError());
  EXPECT_TRUE(WriteVector(out, std::vector<float>{1.0f}).IsIOError());
}

TEST(SerializeHardeningTest, ReadVectorBoundsSizeBeforeAllocating) {
  // A length prefix claiming 2^28 floats backed by 4 bytes of payload must
  // fail cleanly (and cheaply) instead of attempting a 1 GiB resize.
  std::ostringstream out;
  ASSERT_TRUE(WriteU32(out, (1u << 28)).ok());
  ASSERT_TRUE(WriteU32(out, 0xdeadbeef).ok());
  std::istringstream in(out.str());
  std::vector<float> v;
  EXPECT_TRUE(ReadVector(in, &v).IsCorruption());
  EXPECT_TRUE(v.empty());

  // Sizes beyond max_elements are rejected even if the bytes were there.
  std::ostringstream big;
  ASSERT_TRUE(WriteVector(big, std::vector<uint8_t>(64, 7)).ok());
  std::istringstream in2(big.str());
  std::vector<uint8_t> w;
  EXPECT_TRUE(ReadVector(in2, &w, /*max_elements=*/16).IsCorruption());
}

TEST(SerializeHardeningTest, TruncationAtEveryOffsetIsAnError) {
  // A representative blob using every reader: tag, vectors, string.
  std::ostringstream out;
  ASSERT_TRUE(WriteU32(out, 0x4d535154).ok());
  ASSERT_TRUE(WriteVector(out, std::vector<float>{1.f, 2.f, 3.f}).ok());
  ASSERT_TRUE(WriteString(out, "euclidean").ok());
  ASSERT_TRUE(WriteVector(out, std::vector<uint32_t>{4, 5}).ok());
  ASSERT_TRUE(WriteU64(out, 42).ok());
  const std::string blob = out.str();

  const auto parse = [](const std::string& bytes) {
    std::istringstream in(bytes);
    std::vector<float> floats;
    std::string name;
    std::vector<uint32_t> ids;
    uint64_t n = 0;
    MSQ_RETURN_IF_ERROR(ExpectTag(in, 0x4d535154, "test blob"));
    MSQ_RETURN_IF_ERROR(ReadVector(in, &floats));
    MSQ_RETURN_IF_ERROR(ReadString(in, &name));
    MSQ_RETURN_IF_ERROR(ReadVector(in, &ids));
    MSQ_RETURN_IF_ERROR(ReadU64(in, &n));
    return Status::OK();
  };

  ASSERT_TRUE(parse(blob).ok());
  for (size_t len = 0; len < blob.size(); ++len) {
    const Status st = parse(blob.substr(0, len));
    EXPECT_TRUE(st.IsCorruption()) << "prefix of " << len << " bytes: "
                                   << st.ToString();
  }
}

// --- buffer pool Lookup/Admit/Evict ----------------------------------

TEST(BufferPoolSplitTest, LookupDoesNotAdmit) {
  BufferPool pool(2);
  QueryStats stats;
  EXPECT_FALSE(pool.Lookup(1, &stats));
  // A second lookup is still a miss: the failed "read" never admitted.
  EXPECT_FALSE(pool.Lookup(1, &stats));
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(stats.buffer_hits, 0u);

  pool.Admit(1);
  EXPECT_TRUE(pool.Lookup(1, &stats));
  EXPECT_EQ(stats.buffer_hits, 1u);
}

TEST(BufferPoolSplitTest, AdmitReportsTheEvictedVictim) {
  BufferPool pool(2);
  QueryStats stats;
  PageId evicted = kInvalidPageId;
  pool.Admit(1, &evicted);
  EXPECT_EQ(evicted, kInvalidPageId);
  pool.Admit(2, &evicted);
  EXPECT_EQ(evicted, kInvalidPageId);
  // Touch 1 so 2 is the LRU victim.
  EXPECT_TRUE(pool.Lookup(1, &stats));
  pool.Admit(3, &evicted);
  EXPECT_EQ(evicted, 2u);
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(3));
}

TEST(BufferPoolSplitTest, EvictUndoesAnAdmission) {
  BufferPool pool(4);
  QueryStats stats;
  pool.Admit(7);
  ASSERT_TRUE(pool.Contains(7));
  pool.Evict(7);
  EXPECT_FALSE(pool.Contains(7));
  EXPECT_FALSE(pool.Lookup(7, &stats));
  pool.Evict(7);  // idempotent
  EXPECT_EQ(pool.size(), 0u);
}

TEST(BufferPoolSplitTest, ZeroCapacityPoolAdmitsNothing) {
  BufferPool pool(0);
  QueryStats stats;
  pool.Admit(1);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.Lookup(1, &stats));
}

// --- DataLayout store mode -------------------------------------------

class StoreLayoutTest : public ::testing::Test {
 protected:
  // Builds a 6-page sequential layout over 24 objects of dim 3, saves it
  // to a fresh page file, and re-attaches the reopened store.
  void SetUp() override {
    path_ = TempPath("msq_store_layout_test.pf");
    objects_.clear();
    for (size_t i = 0; i < 24; ++i) {
      objects_.push_back(Vec{static_cast<Scalar>(i), 2.0f,
                             static_cast<Scalar>(i) * 0.5f});
    }
    layout_ = DataLayout::Sequential(24, 4, /*buffer_pages=*/2);
    layout_.MaterializeRows(3, objects_);
    auto created = PageFile::Create(path_, PageFile::kMinBlockSize);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ASSERT_TRUE(layout_.SaveToStore(created->get()).ok());
    ASSERT_TRUE((*created)->Sync().ok());
    auto opened = PageFile::Open(path_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    store_ = std::move(opened).value();
    ASSERT_TRUE(layout_.AttachStore(store_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::vector<Vec> objects_;
  DataLayout layout_;
  std::shared_ptr<PageFile> store_;
};

TEST_F(StoreLayoutTest, ReadsComeFromTheFileAndMatch) {
  QueryStats stats;
  for (PageId p = 0; p < layout_.num_pages(); ++p) {
    PageBlock block;
    ASSERT_TRUE(layout_.TryReadBlock(p, &stats, &block).ok());
    ASSERT_EQ(block.size(), 4u);
    for (size_t i = 0; i < block.size(); ++i) {
      const ObjectId id = block.ids[i];
      for (size_t d = 0; d < 3; ++d) {
        EXPECT_EQ(block.vecs.row(i)[d], objects_[id][d]) << id;
      }
    }
  }
  EXPECT_GT(store_->io_stats().reads, 0u);
  EXPECT_GT(store_->io_stats().read_bytes, 0u);
}

TEST_F(StoreLayoutTest, FailedReadLeavesPageNonResident) {
  // Satellite regression: a page whose read fails must not be admitted —
  // a retry has to be a true miss that re-reads (and can succeed).
  store_->SetReadFaultHook(
      [](uint64_t) { return Status::IOError("injected"); });
  QueryStats stats;
  const std::vector<ObjectId>* ids = nullptr;
  EXPECT_TRUE(layout_.TryRead(0, &stats, &ids).IsIOError());
  EXPECT_FALSE(layout_.buffer().Contains(0));
  EXPECT_EQ(stats.buffer_hits, 0u);
  const uint64_t file_reads_after_fault = store_->io_stats().reads;

  store_->SetReadFaultHook(nullptr);
  ASSERT_TRUE(layout_.TryRead(0, &stats, &ids).ok());
  ASSERT_NE(ids, nullptr);
  EXPECT_EQ((*ids)[0], 0u);
  // The retry really went back to the file.
  EXPECT_GT(store_->io_stats().reads, file_reads_after_fault);
  EXPECT_TRUE(layout_.buffer().Contains(0));
  // And now it is a buffer hit, with no further file I/O.
  const uint64_t file_reads_after_retry = store_->io_stats().reads;
  ASSERT_TRUE(layout_.TryRead(0, &stats, &ids).ok());
  EXPECT_EQ(stats.buffer_hits, 1u);
  EXPECT_EQ(store_->io_stats().reads, file_reads_after_retry);
}

TEST_F(StoreLayoutTest, LoadStoredObjectsReconstructsEveryVector) {
  size_t dim = 0;
  std::vector<Vec> restored;
  ASSERT_TRUE(DataLayout::LoadStoredObjects(*store_, &dim, &restored).ok());
  EXPECT_EQ(dim, 3u);
  ASSERT_EQ(restored.size(), objects_.size());
  for (size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i], objects_[i]) << i;
  }
}

// --- MetricDatabase::Save / Open(path) -------------------------------

Dataset RoundTripDataset() {
  return MakeGaussianClustersDataset(400, 4, 4, 0.05, 33);
}

DatabaseOptions RoundTripOptions(BackendKind kind) {
  DatabaseOptions options;
  options.backend = kind;
  options.page_size_bytes = 1024;
  return options;
}

TEST(DatabasePersistTest, SaveReopenAnswersBitIdentically) {
  const Dataset dataset = RoundTripDataset();
  for (BackendKind kind :
       {BackendKind::kLinearScan, BackendKind::kXTree, BackendKind::kMTree,
        BackendKind::kVaFile}) {
    SCOPED_TRACE(BackendKindName(kind));
    const std::string path =
        TempPath("msq_db_roundtrip_" + BackendKindName(kind) + ".msq");
    auto built = MetricDatabase::Open(
        dataset, std::make_shared<EuclideanMetric>(), RoundTripOptions(kind));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE((*built)->Save(path).ok());

    auto reopened = MetricDatabase::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->dataset().size(), dataset.size());
    EXPECT_EQ((*reopened)->dataset().dim(), dataset.dim());
    EXPECT_EQ((*reopened)->dataset().labels(), dataset.labels());
    EXPECT_EQ((*reopened)->metric().Name(), "euclidean");
    EXPECT_EQ((*reopened)->options().backend, kind);

    for (ObjectId id : {0u, 17u, 133u, 399u}) {
      const Query knn = (*built)->MakeObjectKnnQuery(id, 7);
      auto want = (*built)->SimilarityQuery(knn);
      auto got = (*reopened)->SimilarityQuery(knn);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(SameAnswers(*want, *got, /*tol=*/0.0)) << "knn " << id;

      const Query range = (*built)->MakeObjectRangeQuery(id, 0.2);
      auto want_r = (*built)->SimilarityQuery(range);
      auto got_r = (*reopened)->SimilarityQuery(range);
      ASSERT_TRUE(want_r.ok());
      ASSERT_TRUE(got_r.ok()) << got_r.status().ToString();
      EXPECT_TRUE(SameAnswers(*want_r, *got_r, /*tol=*/0.0))
          << "range " << id;
    }
    // The reopened database reads real bytes.
    const DataLayout* layout = (*reopened)->backend().MutableLayout();
    ASSERT_NE(layout, nullptr);
    ASSERT_TRUE(layout->has_store());
    EXPECT_GT(layout->store()->io_stats().reads, 0u);

    std::remove(path.c_str());
  }
}

TEST(DatabasePersistTest, MultiQueryOnReopenedDatabaseMatches) {
  const Dataset dataset = RoundTripDataset();
  const std::string path = TempPath("msq_db_multi.msq");
  auto built =
      MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                           RoundTripOptions(BackendKind::kXTree));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(path).ok());
  auto reopened = MetricDatabase::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  std::vector<Query> batch;
  for (ObjectId id : {2u, 50u, 111u, 222u, 333u}) {
    batch.push_back((*built)->MakeObjectKnnQuery(id, 5));
  }
  auto want = (*built)->MultipleSimilarityQueryAll(batch);
  auto got = (*reopened)->MultipleSimilarityQueryAll(batch);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*want)[i], (*got)[i], /*tol=*/0.0)) << i;
  }
  std::remove(path.c_str());
}

TEST(DatabasePersistTest, MetricHandling) {
  const Dataset dataset = MakeUniformDataset(60, 3, 5);
  const std::string path = TempPath("msq_db_metric.msq");
  auto built =
      MetricDatabase::Open(dataset, std::make_shared<ManhattanMetric>(),
                           RoundTripOptions(BackendKind::kLinearScan));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(path).ok());

  // Stored name resolves the parameterless builtin automatically.
  auto by_name = MetricDatabase::Open(path);
  ASSERT_TRUE(by_name.ok()) << by_name.status().ToString();
  EXPECT_EQ((*by_name)->metric().Name(), "manhattan");

  // An explicitly supplied metric must match the stored name.
  auto mismatched = MetricDatabase::Open(path, DatabaseOptions(),
                                         std::make_shared<EuclideanMetric>());
  EXPECT_TRUE(mismatched.status().IsInvalidArgument());

  // Parameterized metrics cannot come from a name alone.
  auto unknown = MetricFromName("weighted_euclidean");
  EXPECT_TRUE(unknown.status().IsNotSupported());

  std::remove(path.c_str());
}

TEST(DatabasePersistTest, ResavingAReopenedDatabaseIsRejected) {
  const Dataset dataset = MakeUniformDataset(60, 3, 5);
  const std::string path = TempPath("msq_db_resave.msq");
  auto built =
      MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                           RoundTripOptions(BackendKind::kLinearScan));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(path).ok());
  auto reopened = MetricDatabase::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(
      (*reopened)->Save(TempPath("msq_db_resave2.msq")).IsNotSupported());
  std::remove(path.c_str());
}

TEST(DatabasePersistTest, OpenRejectsMissingFile) {
  auto missing = MetricDatabase::Open(TempPath("msq_db_nope.msq"));
  EXPECT_FALSE(missing.ok());
}

// Corruption corpus: a single saved database file, attacked with a bit
// flip at a stride of offsets and truncated to a stride of lengths. Every
// attack must be rejected as Corruption — never a crash, never a UB read,
// never a silently wrong database.
TEST(DatabasePersistTest, CorruptionCorpusAlwaysRejected) {
  const Dataset dataset = MakeUniformDataset(48, 3, 9);
  const std::string path = TempPath("msq_db_corrupt.msq");
  auto built =
      MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                           RoundTripOptions(BackendKind::kLinearScan));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(path).ok());
  const std::string original = ReadFileBytes(path);
  ASSERT_FALSE(original.empty());

  // Bit flips: every byte of the file is covered by the superblock CRC or
  // an extent CRC, so any flip must surface as Corruption.
  for (size_t off = 0; off < original.size(); off += 13) {
    std::string mutated = original;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x10);
    WriteFileBytes(path, mutated);
    auto opened = MetricDatabase::Open(path);
    ASSERT_FALSE(opened.ok()) << "bit flip at " << off;
    EXPECT_TRUE(opened.status().IsCorruption())
        << "bit flip at " << off << ": " << opened.status().ToString();
  }

  // Truncations (and one zero-length file).
  for (size_t len = 0; len < original.size(); len += 97) {
    WriteFileBytes(path, original.substr(0, len));
    auto opened = MetricDatabase::Open(path);
    ASSERT_FALSE(opened.ok()) << "truncation to " << len;
    EXPECT_TRUE(opened.status().IsCorruption())
        << "truncation to " << len << ": " << opened.status().ToString();
  }

  // Trailing garbage fails the exact-size check.
  WriteFileBytes(path, original + std::string(33, 'z'));
  auto padded = MetricDatabase::Open(path);
  EXPECT_TRUE(padded.status().IsCorruption());

  // The pristine bytes still open fine (the corpus never mutated a copy).
  WriteFileBytes(path, original);
  auto intact = MetricDatabase::Open(path);
  EXPECT_TRUE(intact.ok()) << intact.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msq
