// Tests of index persistence: X-tree and M-tree structures round-trip
// through their binary files, loaded indexes answer queries identically,
// and corrupted or mismatched files are rejected.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/single_query.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "dist/counting_metric.h"
#include "dist/edit_distance.h"
#include "mtree/mtree.h"
#include "xtree/xtree.h"
#include "tests/test_util.h"

namespace msq {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::shared_ptr<const Dataset> SharedDataset(Dataset ds) {
  return std::make_shared<Dataset>(std::move(ds));
}

TEST(XTreePersistenceTest, RoundTripPreservesStructureAndAnswers) {
  auto dataset = SharedDataset(
      MakeGaussianClustersDataset(2000, 6, 6, 0.05, 1001));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 1024;
  auto original = XTreeBackend::BulkLoad(dataset, metric, options);
  ASSERT_TRUE(original.ok());

  const std::string path = TempPath("msq_xtree_roundtrip.idx");
  ASSERT_TRUE((*original)->Save(path).ok());
  auto loaded = XTreeBackend::Load(path, dataset, metric, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const XTreeShape a = (*original)->Shape();
  const XTreeShape b = (*loaded)->Shape();
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(a.num_leaves, b.num_leaves);
  EXPECT_EQ(a.num_dir_nodes, b.num_dir_nodes);
  EXPECT_EQ(a.num_supernodes, b.num_supernodes);
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());

  CountingMetric counted(metric);
  Rng rng(1003);
  for (int trial = 0; trial < 10; ++trial) {
    Vec point(6);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    Query q{static_cast<QueryId>(trial + 1), point, QueryType::Knn(8)};
    auto got_a = ExecuteSingleQuery(original->get(), counted, q, nullptr);
    auto got_b = ExecuteSingleQuery(loaded->get(), counted, q, nullptr);
    ASSERT_TRUE(got_a.ok());
    ASSERT_TRUE(got_b.ok());
    EXPECT_TRUE(testing::SameAnswers(*got_a, *got_b)) << trial;
  }
  std::remove(path.c_str());
}

TEST(XTreePersistenceTest, DynamicTreeWithSupernodesRoundTrips) {
  auto dataset = SharedDataset(MakeUniformDataset(3000, 64, 1005));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 4096;
  options.max_overlap = 0.0;  // force supernodes
  auto original = XTreeBackend::BuildByInsertion(dataset, metric, options);
  ASSERT_TRUE(original.ok());
  ASSERT_GT((*original)->Shape().num_supernodes, 0u);
  const std::string path = TempPath("msq_xtree_super.idx");
  ASSERT_TRUE((*original)->Save(path).ok());
  auto loaded = XTreeBackend::Load(path, dataset, metric, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Shape().num_supernodes,
            (*original)->Shape().num_supernodes);
  std::remove(path.c_str());
}

TEST(XTreePersistenceTest, RejectsWrongDataset) {
  auto dataset = SharedDataset(MakeUniformDataset(500, 4, 1007));
  auto metric = std::make_shared<EuclideanMetric>();
  auto tree = XTreeBackend::BulkLoad(dataset, metric, {});
  ASSERT_TRUE(tree.ok());
  const std::string path = TempPath("msq_xtree_wrongds.idx");
  ASSERT_TRUE((*tree)->Save(path).ok());
  // Different size.
  auto smaller = SharedDataset(MakeUniformDataset(400, 4, 1007));
  EXPECT_TRUE(XTreeBackend::Load(path, smaller, metric, {})
                  .status()
                  .IsInvalidArgument());
  // Different dimensionality.
  auto other_dim = SharedDataset(MakeUniformDataset(500, 5, 1007));
  EXPECT_TRUE(XTreeBackend::Load(path, other_dim, metric, {})
                  .status()
                  .IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(XTreePersistenceTest, RejectsGarbageFile) {
  const std::string path = TempPath("msq_xtree_garbage.idx");
  {
    std::ofstream out(path, std::ios::binary);
    out << "certainly not an index";
  }
  auto dataset = SharedDataset(MakeUniformDataset(100, 4, 1009));
  auto metric = std::make_shared<EuclideanMetric>();
  EXPECT_TRUE(
      XTreeBackend::Load(path, dataset, metric, {}).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(XTreePersistenceTest, MissingFileIsIOError) {
  auto dataset = SharedDataset(MakeUniformDataset(100, 4, 1011));
  auto metric = std::make_shared<EuclideanMetric>();
  EXPECT_TRUE(XTreeBackend::Load("/nonexistent/index.idx", dataset, metric,
                                 {})
                  .status()
                  .IsIOError());
}

TEST(MTreePersistenceTest, RoundTripPreservesAnswers) {
  auto dataset = SharedDataset(
      MakeGaussianClustersDataset(1500, 5, 6, 0.05, 1013));
  auto metric = std::make_shared<EuclideanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 1024;
  auto original = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("msq_mtree_roundtrip.idx");
  ASSERT_TRUE((*original)->Save(path).ok());
  auto loaded = MTreeBackend::Load(path, dataset, metric, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());

  const MTreeShape a = (*original)->Shape();
  const MTreeShape b = (*loaded)->Shape();
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(a.num_leaves, b.num_leaves);

  CountingMetric counted(metric);
  for (ObjectId probe : {0u, 700u, 1499u}) {
    Query q{static_cast<QueryId>(probe), dataset->object(probe),
            QueryType::Knn(5)};
    auto got_a = ExecuteSingleQuery(original->get(), counted, q, nullptr);
    auto got_b = ExecuteSingleQuery(loaded->get(), counted, q, nullptr);
    ASSERT_TRUE(got_a.ok());
    ASSERT_TRUE(got_b.ok());
    EXPECT_TRUE(testing::SameAnswers(*got_a, *got_b));
  }
  std::remove(path.c_str());
}

TEST(MTreePersistenceTest, LoadingWithWrongMetricFailsInvariants) {
  auto dataset = SharedDataset(MakeUniformDataset(800, 4, 1015));
  auto euclid = std::make_shared<EuclideanMetric>();
  MTreeOptions options;
  options.page_size_bytes = 512;  // force a real (multi-level) structure
  auto tree = MTreeBackend::Build(dataset, euclid, options);
  ASSERT_TRUE(tree.ok());
  const std::string path = TempPath("msq_mtree_wrongmetric.idx");
  ASSERT_TRUE((*tree)->Save(path).ok());
  // Manhattan distances differ, so the stored radii/parent distances no
  // longer verify — the load must fail loudly instead of mis-answering.
  auto manhattan = std::make_shared<ManhattanMetric>();
  EXPECT_TRUE(MTreeBackend::Load(path, dataset, manhattan, options)
                  .status()
                  .IsCorruption());
  std::remove(path.c_str());
}

TEST(MTreePersistenceTest, EditDistanceIndexRoundTrips) {
  auto dataset = SharedDataset(MakeSessionDataset(400, 6, 30, 12, 1017));
  auto metric = std::make_shared<EditDistanceMetric>();
  MTreeOptions options;
  options.page_size_bytes = 1024;
  auto original = MTreeBackend::Build(dataset, metric, options);
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("msq_mtree_edit.idx");
  ASSERT_TRUE((*original)->Save(path).ok());
  auto loaded = MTreeBackend::Load(path, dataset, metric, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  CountingMetric counted(metric);
  Query q{1, dataset->object(7), QueryType::Knn(4)};
  auto got_a = ExecuteSingleQuery(original->get(), counted, q, nullptr);
  auto got_b = ExecuteSingleQuery(loaded->get(), counted, q, nullptr);
  ASSERT_TRUE(got_a.ok());
  ASSERT_TRUE(got_b.ok());
  EXPECT_TRUE(testing::SameAnswers(*got_a, *got_b));
  std::remove(path.c_str());
}

TEST(MTreePersistenceTest, RejectsTruncatedFile) {
  auto dataset = SharedDataset(MakeUniformDataset(500, 4, 1019));
  auto metric = std::make_shared<EuclideanMetric>();
  auto tree = MTreeBackend::Build(dataset, metric, {});
  ASSERT_TRUE(tree.ok());
  const std::string path = TempPath("msq_mtree_trunc.idx");
  ASSERT_TRUE((*tree)->Save(path).ok());
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_FALSE(MTreeBackend::Load(path, dataset, metric, {}).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msq
