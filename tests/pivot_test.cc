// Tests for the LAESA pivot-filtering layer (DESIGN §12): the PivotTable
// build/serialization, the PivotCanAvoid inequality, bit-identity of
// pivot-on vs pivot-off execution across every backend and both kernel
// modes (the filter must never change an answer set), boundary semantics
// (objects exactly at the query distance survive both filter layers), the
// M-tree hyper-ring cuts, and persistence of the table through the
// single-file page store.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "core/pivot_table.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- PivotCanAvoid -------------------------------------------------------

// One try per evaluated inequality; a success charges one avoided and stops
// the scan (later pivots are not charged).
TEST(PivotFilterTest, TryAccountingIsOnePerInequality) {
  const double object_row[] = {5.0, 5.0, 100.0, 5.0};
  const double query_row[] = {5.0, 5.0, 0.0, 0.0};
  QueryStats stats;
  // Pivots 0 and 1 give |5-5| = 0 <= 2 (no proof), pivot 2 gives 100 > 2.
  EXPECT_TRUE(PivotCanAvoid(object_row, query_row, 4, 2.0, &stats));
  EXPECT_EQ(stats.pivot_tries, 3u);
  EXPECT_EQ(stats.pivot_avoided, 1u);

  // All pivots fail: every inequality charged, nothing avoided.
  QueryStats fail_stats;
  EXPECT_FALSE(PivotCanAvoid(object_row, query_row, 2, 2.0, &fail_stats));
  EXPECT_EQ(fail_stats.pivot_tries, 2u);
  EXPECT_EQ(fail_stats.pivot_avoided, 0u);
}

// Strict comparison: a lower bound exactly at the query distance proves
// nothing (the object may be a boundary answer).
TEST(PivotFilterTest, ExactBoundaryLowerBoundDoesNotAvoid) {
  const double object_row[] = {7.0};
  const double query_row[] = {4.0};
  QueryStats stats;
  EXPECT_FALSE(PivotCanAvoid(object_row, query_row, 1, 3.0, &stats));
  EXPECT_EQ(stats.pivot_tries, 1u);
  EXPECT_EQ(stats.pivot_avoided, 0u);
}

// Unsaturated kNN (infinite radius): no pruning, no charge.
TEST(PivotFilterTest, InfiniteQueryDistanceChargesNothing) {
  const double object_row[] = {7.0};
  const double query_row[] = {4.0};
  QueryStats stats;
  EXPECT_FALSE(PivotCanAvoid(object_row, query_row, 1,
                             std::numeric_limits<double>::infinity(), &stats));
  EXPECT_EQ(stats.pivot_tries, 0u);
}

// --- PivotTable build ----------------------------------------------------

// Every precomputed row entry must equal the metric distance exactly, and
// QueryDists must charge exactly p pivot_dist_computations.
TEST(PivotTableTest, RowsMatchMetricExactly) {
  Dataset dataset = MakeGaussianClustersDataset(300, 5, 4, 0.1, 7);
  EuclideanMetric metric;
  PivotTableOptions options;
  options.num_pivots = 6;
  options.sample_size = 128;
  auto table = PivotTable::Build(dataset, metric, options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_GT((*table)->num_pivots(), 0u);
  ASSERT_LE((*table)->num_pivots(), 6u);
  EXPECT_EQ((*table)->num_objects(), dataset.size());

  for (ObjectId id : {ObjectId{0}, ObjectId{151}, ObjectId{299}}) {
    const double* row = (*table)->Row(id);
    for (size_t k = 0; k < (*table)->num_pivots(); ++k) {
      EXPECT_EQ(row[k],
                metric.Distance(dataset.object(id), (*table)->pivot_point(k)));
    }
  }

  QueryStats stats;
  std::vector<double> qdists;
  (*table)->QueryDists(dataset.object(42), metric, &stats, &qdists);
  ASSERT_EQ(qdists.size(), (*table)->num_pivots());
  EXPECT_EQ(stats.pivot_dist_computations, (*table)->num_pivots());
  EXPECT_EQ(stats.dist_computations, 0u);
  for (size_t k = 0; k < qdists.size(); ++k) {
    EXPECT_EQ(qdists[k],
              metric.Distance(dataset.object(42), (*table)->pivot_point(k)));
  }
}

// Maxmin selection on a duplicate-heavy dataset stops early instead of
// picking zero-distance pivots; the build never fails for lack of variety.
TEST(PivotTableTest, DuplicateHeavyDatasetYieldsFewerPivots) {
  std::vector<Vec> objects(50, Vec{1.0f, 2.0f});
  objects.push_back(Vec{5.0f, 5.0f});
  Dataset dataset(2, std::move(objects));
  auto table = PivotTable::Build(dataset, EuclideanMetric(), {});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_GE((*table)->num_pivots(), 1u);
  EXPECT_LE((*table)->num_pivots(), 2u);
}

TEST(PivotTableTest, EmptyDatasetAndZeroPivotsAreRejected) {
  EuclideanMetric metric;
  EXPECT_FALSE(PivotTable::Build(Dataset(), metric, {}).ok());
  Dataset one(1, {Vec{0.0f}});
  PivotTableOptions zero;
  zero.num_pivots = 0;
  EXPECT_FALSE(PivotTable::Build(one, metric, zero).ok());
}

// --- serialization -------------------------------------------------------

TEST(PivotTableTest, SaveLoadRoundTripIsExact) {
  Dataset dataset = MakeUniformDataset(200, 4, 19);
  EuclideanMetric metric;
  PivotTableOptions options;
  options.num_pivots = 5;
  auto table = PivotTable::Build(dataset, metric, options);
  ASSERT_TRUE(table.ok());

  std::ostringstream out;
  ASSERT_TRUE((*table)->SaveTo(out).ok());
  std::istringstream in(out.str());
  auto loaded = PivotTable::LoadFrom(in, dataset, metric);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_pivots(), (*table)->num_pivots());
  EXPECT_EQ((*loaded)->pivot_ids(), (*table)->pivot_ids());
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    for (size_t k = 0; k < (*table)->num_pivots(); ++k) {
      EXPECT_EQ((*loaded)->Row(id)[k], (*table)->Row(id)[k]);
    }
  }
}

// Loading against the wrong metric or wrong dataset must fail validation
// (the spot-checked rows cannot reproduce), never silently corrupt results.
TEST(PivotTableTest, LoadRejectsMismatchedMetricOrDataset) {
  Dataset dataset = MakeUniformDataset(100, 3, 23);
  auto table = PivotTable::Build(dataset, EuclideanMetric(), {});
  ASSERT_TRUE(table.ok());
  std::ostringstream out;
  ASSERT_TRUE((*table)->SaveTo(out).ok());

  {
    std::istringstream in(out.str());
    auto loaded = PivotTable::LoadFrom(in, dataset, ManhattanMetric());
    EXPECT_FALSE(loaded.ok());
  }
  {
    Dataset smaller = MakeUniformDataset(50, 3, 23);
    std::istringstream in(out.str());
    auto loaded = PivotTable::LoadFrom(in, smaller, EuclideanMetric());
    EXPECT_FALSE(loaded.ok());
  }
  {
    std::istringstream garbage("not a pivot table");
    auto loaded = PivotTable::LoadFrom(garbage, dataset, EuclideanMetric());
    EXPECT_FALSE(loaded.ok());
  }
}

// --- engine bit-identity -------------------------------------------------

struct BackendCase {
  BackendKind kind;
};

class PivotEquivalenceTest : public ::testing::TestWithParam<BackendCase> {};

// The acceptance property of the layer: with pivots armed, every backend
// and both kernel modes produce bit-identical answers to the pivot-off
// oracle, while never computing more distances. Batched and scalar pivot
// runs must also agree exactly on dist_computations and pivot_avoided
// (phase-1 filtering at the page-start radius is final; see PageKernel).
TEST_P(PivotEquivalenceTest, AnswersBitIdenticalToPivotOffOracle) {
  Dataset dataset = MakeGaussianClustersDataset(1000, 8, 6, 0.08, 47);
  auto open = [&](bool pivots, bool batched) {
    DatabaseOptions options;
    options.backend = GetParam().kind;
    options.page_size_bytes = 2048;
    options.multi.use_batched_kernel = batched;
    options.pivots.enabled = pivots;
    options.pivots.table.num_pivots = 8;
    auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                   options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  };
  auto off_db = open(false, true);
  auto on_batched = open(true, true);
  auto on_scalar = open(true, false);
  ASSERT_NE(on_batched->pivot_table(), nullptr);
  EXPECT_EQ(off_db->pivot_table(), nullptr);

  Rng rng(13);
  const auto ids = rng.SampleWithoutReplacement(dataset.size(), 20);
  std::vector<Query> queries;
  for (uint64_t id : ids) {
    queries.push_back(off_db->MakeObjectKnnQuery(static_cast<ObjectId>(id), 8));
  }
  auto oracle = off_db->MultipleSimilarityQueryAll(queries);
  auto batched = on_batched->MultipleSimilarityQueryAll(queries);
  auto scalar = on_scalar->MultipleSimilarityQueryAll(queries);
  ASSERT_TRUE(oracle.ok() && batched.ok() && scalar.ok());

  ASSERT_EQ(oracle->size(), batched->size());
  for (size_t i = 0; i < oracle->size(); ++i) {
    ASSERT_EQ((*oracle)[i].size(), (*batched)[i].size()) << "query " << i;
    for (size_t j = 0; j < (*oracle)[i].size(); ++j) {
      EXPECT_EQ((*oracle)[i][j].id, (*batched)[i][j].id);
      EXPECT_EQ((*oracle)[i][j].distance, (*batched)[i][j].distance);
      EXPECT_EQ((*oracle)[i][j].id, (*scalar)[i][j].id);
      EXPECT_EQ((*oracle)[i][j].distance, (*scalar)[i][j].distance);
    }
  }

  const QueryStats& off = off_db->stats();
  const QueryStats& on_b = on_batched->stats();
  const QueryStats& on_s = on_scalar->stats();
  // Filter-only: pivots can only remove distance computations.
  EXPECT_LE(on_b.dist_computations, off.dist_computations);
  EXPECT_GT(on_b.pivot_tries, 0u);
  EXPECT_EQ(on_b.pivot_dist_computations, on_s.pivot_dist_computations);
  // Scalar mode is the batched mode's exact cost oracle with pivots armed:
  // dist_computations and the *total* avoided count match exactly. The
  // per-layer split may shift between pivot and triangle credit (a smaller
  // per-object radius strengthens the pivot bound; see page_kernel.h).
  EXPECT_EQ(on_b.dist_computations, on_s.dist_computations);
  EXPECT_EQ(on_b.pivot_avoided + on_b.triangle_avoided,
            on_s.pivot_avoided + on_s.triangle_avoided);
  EXPECT_GT(on_b.pivot_avoided, 0u);
  // The off-oracle charges no pivot work at all.
  EXPECT_EQ(off.pivot_tries, 0u);
  EXPECT_EQ(off.pivot_avoided, 0u);
  EXPECT_EQ(off.pivot_dist_computations, 0u);
}

// Single-query path (Figure 1): SimilarityQuery with pivots armed matches
// the brute-force oracle on every backend.
TEST_P(PivotEquivalenceTest, SingleQueryMatchesBruteForce) {
  Dataset dataset = MakeGaussianClustersDataset(600, 6, 4, 0.1, 53);
  DatabaseOptions options;
  options.backend = GetParam().kind;
  options.page_size_bytes = 1024;
  options.pivots.enabled = true;
  options.pivots.table.num_pivots = 6;
  auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                 options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EuclideanMetric metric;
  for (ObjectId id : {0u, 99u, 473u}) {
    const Query knn = (*db)->MakeObjectKnnQuery(id, 10);
    auto got = (*db)->SimilarityQuery(knn);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(SameAnswers(*got, BruteForceQuery(dataset, metric, knn)));

    const Query range = (*db)->MakeObjectRangeQuery(id, 0.5);
    auto got_range = (*db)->SimilarityQuery(range);
    ASSERT_TRUE(got_range.ok());
    EXPECT_TRUE(
        SameAnswers(*got_range, BruteForceQuery(dataset, metric, range)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PivotEquivalenceTest,
    ::testing::Values(BackendCase{BackendKind::kLinearScan},
                      BackendCase{BackendKind::kVaFile},
                      BackendCase{BackendKind::kXTree},
                      BackendCase{BackendKind::kMTree}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return BackendKindName(info.param.kind);
    });

// --- boundary semantics --------------------------------------------------

// A deterministic grid where answers sit *exactly* at the query distance:
// both filter layers use strict comparisons, so the boundary object (range)
// and the id-resolved tie (kNN) must survive pivots + hyper-rings on every
// backend.
class PivotBoundaryTest : public ::testing::TestWithParam<BackendCase> {};

TEST_P(PivotBoundaryTest, BoundaryObjectsSurviveBothFilterLayers) {
  // 1-d integer grid: object i at x = i. dist(3, 5) = 2 exactly; kNN from
  // x = 4 has the tie dist(4,3) = dist(4,5) = 1 resolved by id.
  std::vector<Vec> objects;
  for (int i = 0; i < 64; ++i) {
    objects.push_back(Vec{static_cast<float>(i)});
  }
  Dataset dataset(1, std::move(objects));

  DatabaseOptions options;
  options.backend = GetParam().kind;
  options.page_size_bytes = 256;
  options.pivots.enabled = true;
  options.pivots.table.num_pivots = 4;
  auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                 options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Range boundary: eps = 2.0 from x = 3 must include x = 1 and x = 5.
  auto range = (*db)->SimilarityQuery((*db)->MakeObjectRangeQuery(3, 2.0));
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->size(), 5u);  // x = 1..5
  EXPECT_EQ(range->front().id, 3u);  // distance 0 first
  EXPECT_EQ((*range)[3].distance, 2.0);
  EXPECT_EQ((*range)[4].distance, 2.0);

  // kNN tie: k = 2 from x = 4 -> self plus the *lower-id* of the two
  // distance-1 neighbors (ties resolve by id: object 3 beats object 5).
  auto knn = (*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(4, 2));
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 2u);
  EXPECT_EQ((*knn)[0].id, 4u);
  EXPECT_EQ((*knn)[1].id, 3u);
  EXPECT_EQ((*knn)[1].distance, 1.0);

  // Same queries through the multiple-query engine (both kernel modes are
  // covered by PivotEquivalenceTest; here the batch runs with avoidance
  // armed on top of the pivot layer).
  std::vector<Query> batch = {(*db)->MakeObjectRangeQuery(3, 2.0),
                              (*db)->MakeObjectKnnQuery(4, 2)};
  auto multi = (*db)->MultipleSimilarityQueryAll(batch);
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(SameAnswers((*multi)[0], *range));
  EXPECT_TRUE(SameAnswers((*multi)[1], *knn));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PivotBoundaryTest,
    ::testing::Values(BackendCase{BackendKind::kLinearScan},
                      BackendCase{BackendKind::kVaFile},
                      BackendCase{BackendKind::kXTree},
                      BackendCase{BackendKind::kMTree}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return BackendKindName(info.param.kind);
    });

// --- M-tree hyper-rings --------------------------------------------------

// The ring cuts must actually engage on the M-tree (pivot_tries > 0 even
// for single queries, where the page-level filter only sees the saturated
// radius) and stay answer-identical to the pivot-off tree.
TEST(PivotMTreeRingTest, RingCutsEngageAndPreserveAnswers) {
  Dataset dataset = MakeGaussianClustersDataset(1500, 8, 8, 0.05, 67);
  auto open = [&](bool pivots) {
    DatabaseOptions options;
    options.backend = BackendKind::kMTree;
    options.page_size_bytes = 2048;
    options.pivots.enabled = pivots;
    auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                   options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  };
  auto plain = open(false);
  auto ringed = open(true);

  for (ObjectId id : {5u, 700u, 1400u}) {
    const Query q = plain->MakeObjectRangeQuery(id, 0.4);
    auto a = plain->SimilarityQuery(q);
    auto b = ringed->SimilarityQuery(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(SameAnswers(*a, *b));
  }
  EXPECT_GT(ringed->stats().pivot_tries, 0u);
  EXPECT_LE(ringed->stats().dist_computations, plain->stats().dist_computations);
}

// --- persistence through the page store ----------------------------------

// Save writes the table as the store's "pivots" object; Open(path) restores
// it (stored table wins over the runtime flag) and queries stay identical.
TEST(PivotPersistenceTest, SaveReopenKeepsPivotLayer) {
  const std::string path = TempPath("msq_pivot_roundtrip.msq");
  Dataset dataset = MakeGaussianClustersDataset(400, 5, 4, 0.1, 31);
  AnswerSet before;
  {
    DatabaseOptions options;
    options.backend = BackendKind::kXTree;
    options.pivots.enabled = true;
    options.pivots.table.num_pivots = 5;
    auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                   options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto got = (*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(17, 9));
    ASSERT_TRUE(got.ok());
    before = *got;
    ASSERT_TRUE((*db)->Save(path).ok());
  }
  {
    // Runtime flag off: the stored table must still arm the layer.
    auto db = MetricDatabase::Open(path);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_NE((*db)->pivot_table(), nullptr);
    EXPECT_EQ((*db)->pivot_table()->num_pivots(), 5u);
    auto got = (*db)->SimilarityQuery((*db)->MakeObjectKnnQuery(17, 9));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(SameAnswers(before, *got));
    EXPECT_GT((*db)->stats().pivot_dist_computations, 0u);
  }
  std::remove(path.c_str());
}

// A database saved without pivots reopens without them, and the runtime
// flag can build a fresh table at reopen time.
TEST(PivotPersistenceTest, ReopenWithoutStoredTableHonorsRuntimeFlag) {
  const std::string path = TempPath("msq_pivot_fresh.msq");
  Dataset dataset = MakeUniformDataset(300, 4, 71);
  {
    auto db = MetricDatabase::Open(dataset, std::make_shared<EuclideanMetric>(),
                                   DatabaseOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Save(path).ok());
  }
  {
    auto db = MetricDatabase::Open(path);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->pivot_table(), nullptr);
  }
  {
    DatabaseOptions runtime;
    runtime.pivots.enabled = true;
    runtime.pivots.table.num_pivots = 3;
    auto db = MetricDatabase::Open(path, runtime);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_NE((*db)->pivot_table(), nullptr);
    EuclideanMetric metric;
    const Query q = (*db)->MakeObjectKnnQuery(11, 7);
    auto got = (*db)->SimilarityQuery(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(SameAnswers(*got, BruteForceQuery(dataset, metric, q)));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msq
