// Tests of the cost-based QueryPlanner and the incremental
// MultiQueryCursor.

#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/multi_cursor.h"
#include "core/planner.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "dist/edit_distance.h"
#include "parallel/cluster.h"
#include "parallel/decluster.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

// ---------------------------------------------------------------------
// QueryPlanner
// ---------------------------------------------------------------------

PlannerOptions SmallPlannerOptions() {
  PlannerOptions options;
  options.database.page_size_bytes = 2048;
  options.probe_queries = 6;
  return options;
}

TEST(PlannerTest, CreateBuildsAllSupportedCandidates) {
  auto planner = QueryPlanner::Create(
      MakeGaussianClustersDataset(2000, 8, 8, 0.04, 901),
      std::make_shared<EuclideanMetric>(), SmallPlannerOptions());
  ASSERT_TRUE(planner.ok()) << planner.status().ToString();
  ASSERT_EQ((*planner)->profiles().size(), 2u);
  for (const BackendProfile& profile : (*planner)->profiles()) {
    EXPECT_GT(profile.single_query_ms, 0.0);
    EXPECT_GT(profile.batched_query_ms, 0.0);
  }
}

TEST(PlannerTest, SkipsCandidatesThatRejectTheMetric) {
  // Edit distance has no MINDIST: the X-tree candidate must be skipped,
  // leaving the scan.
  PlannerOptions options = SmallPlannerOptions();
  auto planner = QueryPlanner::Create(
      MakeSessionDataset(300, 5, 30, 12, 903),
      std::make_shared<EditDistanceMetric>(), options);
  ASSERT_TRUE(planner.ok()) << planner.status().ToString();
  ASSERT_EQ((*planner)->profiles().size(), 1u);
  EXPECT_EQ((*planner)->profiles()[0].kind, BackendKind::kLinearScan);
}

TEST(PlannerTest, FailsWhenNoCandidateSupportsMetric) {
  PlannerOptions options = SmallPlannerOptions();
  options.candidates = {BackendKind::kXTree, BackendKind::kVaFile};
  auto planner = QueryPlanner::Create(
      MakeUniformDataset(200, 4, 905), std::make_shared<AngularMetric>(),
      options);
  EXPECT_TRUE(planner.status().IsNotSupported());
}

TEST(PlannerTest, RejectsEmptyCandidateList) {
  PlannerOptions options = SmallPlannerOptions();
  options.candidates.clear();
  auto planner = QueryPlanner::Create(MakeUniformDataset(100, 3, 907),
                                      std::make_shared<EuclideanMetric>(),
                                      options);
  EXPECT_TRUE(planner.status().IsInvalidArgument());
}

TEST(PlannerTest, RegimeChangeBetweenSingleAndLargeBatches) {
  // On clustered data the index wins single queries; for very large
  // batches the scan's perfect I/O amortization wins (Sec. 6.3). The
  // planner's profiles must produce exactly that crossover.
  auto planner = QueryPlanner::Create(
      MakeGaussianClustersDataset(8000, 8, 10, 0.03, 909),
      std::make_shared<EuclideanMetric>(), SmallPlannerOptions());
  ASSERT_TRUE(planner.ok());
  const PlanDecision at_1 = (*planner)->Plan(1);
  const PlanDecision at_big = (*planner)->Plan(100000);
  EXPECT_EQ(at_1.chosen, BackendKind::kXTree);
  EXPECT_EQ(at_big.chosen, BackendKind::kLinearScan);
}

TEST(PlannerTest, ExecuteBatchReturnsCorrectAnswers) {
  Dataset dataset = MakeGaussianClustersDataset(1500, 6, 6, 0.05, 911);
  EuclideanMetric metric;
  auto planner = QueryPlanner::Create(dataset,
                                      std::make_shared<EuclideanMetric>(),
                                      SmallPlannerOptions());
  ASSERT_TRUE(planner.ok());
  MetricDatabase* any_db = (*planner)->database(BackendKind::kLinearScan);
  ASSERT_NE(any_db, nullptr);
  Rng rng(913);
  std::vector<Query> batch;
  for (uint64_t id : rng.SampleWithoutReplacement(dataset.size(), 15)) {
    batch.push_back(any_db->MakeObjectKnnQuery(static_cast<ObjectId>(id), 7));
  }
  auto got = (*planner)->ExecuteBatch(batch);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*got)[i],
                            BruteForceQuery(dataset, metric, batch[i])));
  }
  ASSERT_EQ((*planner)->decisions().size(), 1u);
  EXPECT_EQ((*planner)->decisions()[0].batch_size, 15u);
}

TEST(PlannerTest, ExecuteBatchChunksOversizedBatches) {
  Dataset dataset = MakeUniformDataset(600, 5, 915);
  PlannerOptions options = SmallPlannerOptions();
  options.database.multi.max_batch_size = 8;  // force chunking
  auto planner = QueryPlanner::Create(dataset,
                                      std::make_shared<EuclideanMetric>(),
                                      options);
  ASSERT_TRUE(planner.ok());
  MetricDatabase* db = (*planner)->database(BackendKind::kLinearScan);
  std::vector<Query> batch;
  for (ObjectId id = 0; id < 30; ++id) {
    batch.push_back(db->MakeObjectKnnQuery(id, 4));
  }
  auto got = (*planner)->ExecuteBatch(batch);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 30u);
  EuclideanMetric metric;
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*got)[i],
                            BruteForceQuery(dataset, metric, batch[i])));
  }
}

TEST(PlannerTest, PredictMsInterpolatesMonotonically) {
  BackendProfile profile;
  profile.single_query_ms = 100.0;
  profile.batched_query_ms = 5.0;
  double prev = profile.PredictMs(1);
  EXPECT_DOUBLE_EQ(prev, 100.0);
  for (size_t m : {2, 5, 10, 50, 100, 1000}) {
    const double cur = profile.PredictMs(m);
    EXPECT_LE(cur, prev);
    EXPECT_GE(cur, 5.0);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(profile.PredictMs(1000000), 5.0);
}

// ---------------------------------------------------------------------
// MultiQueryCursor
// ---------------------------------------------------------------------

std::unique_ptr<MetricDatabase> CursorDb(Dataset dataset) {
  DatabaseOptions options;
  options.backend = BackendKind::kXTree;
  options.page_size_bytes = 2048;
  auto db = MetricDatabase::Open(std::move(dataset),
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(MultiQueryCursorTest, DrainsAllQueriesWithCompleteAnswers) {
  Dataset dataset = MakeGaussianClustersDataset(1000, 5, 5, 0.05, 917);
  EuclideanMetric metric;
  auto db = CursorDb(dataset);
  MultiQueryCursor cursor(&db->engine(), nullptr);
  std::vector<Query> batch;
  for (ObjectId id : {5u, 100u, 400u, 700u, 950u}) {
    batch.push_back(db->MakeObjectKnnQuery(id, 6));
  }
  ASSERT_TRUE(cursor.Push(batch).ok());
  size_t drained = 0;
  while (cursor.HasNext()) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    EXPECT_EQ(next->id, batch[drained].id);
    EXPECT_TRUE(SameAnswers(next->answers,
                            BruteForceQuery(dataset, metric,
                                            batch[drained])));
    ++drained;
  }
  EXPECT_EQ(drained, batch.size());
  EXPECT_EQ(cursor.completed(), batch.size());
}

TEST(MultiQueryCursorTest, PeekShowsPartialSubsetOfTrueAnswers) {
  Dataset dataset = MakeGaussianClustersDataset(1200, 5, 6, 0.05, 919);
  EuclideanMetric metric;
  auto db = CursorDb(dataset);
  MultiQueryCursor cursor(&db->engine(), nullptr);
  std::vector<Query> batch;
  for (ObjectId id : {3u, 11u, 222u, 444u}) {
    batch.push_back(db->MakeObjectRangeQuery(id, 0.2));
  }
  ASSERT_TRUE(cursor.Push(batch).ok());
  ASSERT_TRUE(cursor.Next().ok());  // completes batch[0], prefetches rest
  for (size_t i = 0; i < cursor.pending(); ++i) {
    auto partial = cursor.Peek(i);
    ASSERT_TRUE(partial.ok());
    const AnswerSet full = BruteForceQuery(dataset, metric, batch[i + 1]);
    for (const Neighbor& nb : *partial) {
      EXPECT_TRUE(std::binary_search(full.begin(), full.end(), nb))
          << "peeked answer not in the true answer set";
    }
  }
}

TEST(MultiQueryCursorTest, QueriesCanArriveMidIteration) {
  Dataset dataset = MakeUniformDataset(800, 4, 921);
  EuclideanMetric metric;
  auto db = CursorDb(dataset);
  MultiQueryCursor cursor(&db->engine(), nullptr);
  ASSERT_TRUE(cursor.Push(db->MakeObjectKnnQuery(1, 5)).ok());
  ASSERT_TRUE(cursor.Next().ok());
  EXPECT_FALSE(cursor.HasNext());
  // The mining loop discovers new query objects and pushes them.
  Query late = db->MakeObjectKnnQuery(2, 5);
  ASSERT_TRUE(cursor.Push(late).ok());
  auto next = cursor.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->id, late.id);
  EXPECT_TRUE(SameAnswers(next->answers,
                          BruteForceQuery(dataset, metric, late)));
}

TEST(MultiQueryCursorTest, RejectsDuplicatePendingIds) {
  Dataset dataset = MakeUniformDataset(300, 3, 923);
  auto db = CursorDb(dataset);
  MultiQueryCursor cursor(&db->engine(), nullptr);
  ASSERT_TRUE(cursor.Push(db->MakeObjectKnnQuery(1, 3)).ok());
  EXPECT_TRUE(cursor.Push(db->MakeObjectKnnQuery(1, 3))
                  .IsInvalidArgument());
}

TEST(MultiQueryCursorTest, NextOnEmptyCursorFails) {
  Dataset dataset = MakeUniformDataset(100, 3, 925);
  auto db = CursorDb(dataset);
  MultiQueryCursor cursor(&db->engine(), nullptr);
  EXPECT_TRUE(cursor.Next().status().IsInvalidArgument());
  EXPECT_TRUE(cursor.Peek(0).status().IsInvalidArgument());
}

TEST(MultiQueryCursorTest, WindowRespectsEngineBatchLimit) {
  Dataset dataset = MakeUniformDataset(500, 4, 927);
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.multi.max_batch_size = 4;
  auto db = MetricDatabase::Open(dataset,
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  ASSERT_TRUE(db.ok());
  MultiQueryCursor cursor(&(*db)->engine(), nullptr);
  for (ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE(cursor.Push((*db)->MakeObjectKnnQuery(id, 3)).ok());
  }
  EuclideanMetric metric;
  size_t drained = 0;
  while (cursor.HasNext()) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ++drained;
  }
  EXPECT_EQ(drained, 10u);
}

// ---------------------------------------------------------------------
// Spatial declustering
// ---------------------------------------------------------------------

TEST(SpatialDeclusterTest, PartitionsAreCompleteDisjointAndBalanced) {
  Dataset dataset = MakeUniformDataset(1000, 4, 929);
  auto got = DeclusterDataset(dataset, 7, DeclusterStrategy::kSpatial, 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), 7u);
  std::set<ObjectId> seen;
  for (const auto& part : *got) {
    EXPECT_GE(part.size(), 1000u / 7 / 2);
    EXPECT_LE(part.size(), 1000u / 7 * 2);
    for (ObjectId id : part) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(SpatialDeclusterTest, PartitionsAreSpatiallyCompact) {
  // Average pairwise distance within a spatial partition must be well
  // below that of a round-robin partition.
  Dataset dataset = MakeUniformDataset(2000, 3, 931);
  EuclideanMetric metric;
  auto spatial = DeclusterDataset(dataset, 8, DeclusterStrategy::kSpatial, 1);
  auto rr = DeclusterDataset(dataset, 8, DeclusterStrategy::kRoundRobin, 1);
  ASSERT_TRUE(spatial.ok());
  ASSERT_TRUE(rr.ok());
  auto avg_intra = [&](const std::vector<std::vector<ObjectId>>& parts) {
    double sum = 0.0;
    size_t count = 0;
    for (const auto& part : parts) {
      for (size_t i = 0; i < part.size(); i += 13) {
        for (size_t j = i + 1; j < part.size(); j += 13) {
          sum += metric.Distance(dataset.object(part[i]),
                                 dataset.object(part[j]));
          ++count;
        }
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_LT(avg_intra(*spatial), 0.7 * avg_intra(*rr));
}

TEST(SpatialDeclusterTest, PlainDeclusterRejectsSpatial) {
  EXPECT_TRUE(Decluster(100, 4, DeclusterStrategy::kSpatial, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(SpatialDeclusterTest, ClusterAnswersStayCorrect) {
  Dataset dataset = MakeGaussianClustersDataset(900, 4, 5, 0.05, 933);
  EuclideanMetric metric;
  ClusterOptions options;
  options.num_servers = 5;
  options.strategy = DeclusterStrategy::kSpatial;
  options.server_options.page_size_bytes = 2048;
  options.server_options.multi.max_batch_size = 64;
  auto cluster = SharedNothingCluster::Create(
      dataset, std::make_shared<EuclideanMetric>(), options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  std::vector<Query> queries;
  for (ObjectId id : {1u, 200u, 500u, 880u}) {
    queries.push_back(Query{static_cast<QueryId>(id), dataset.object(id),
                            QueryType::Knn(6)});
  }
  auto got = (*cluster)->ExecuteMultipleAll(queries);
  ASSERT_TRUE(got.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*got)[i],
                            BruteForceQuery(dataset, metric, queries[i])));
  }
}

}  // namespace
}  // namespace msq
