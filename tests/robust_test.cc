// Tests of the fault-tolerance layer: deterministic fault injection,
// per-query deadlines with partial answers, transient-fault recovery
// through the engine's accounted-page rollback, and the cluster's retry /
// graceful-degradation paths — each reflected in the exported msq_*
// counters.

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "parallel/cluster.h"
#include "robust/fault_injector.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

std::unique_ptr<MetricDatabase> OpenScanDb(
    Dataset dataset, std::shared_ptr<robust::FaultInjector> injector = nullptr,
    MultiQueryOptions multi = {}) {
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.page_size_bytes = 2048;
  options.multi = multi;
  options.fault_injector = std::move(injector);
  auto db = MetricDatabase::Open(std::move(dataset),
                                 std::make_shared<EuclideanMetric>(), options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// True when every answer of `part` appears (same id, same distance) in
/// `full` — the correctness contract of a partial answer set.
bool SubsetOf(const AnswerSet& part, const AnswerSet& full) {
  for (const Neighbor& nb : part) {
    const bool found =
        std::any_of(full.begin(), full.end(), [&](const Neighbor& other) {
          return other.id == nb.id &&
                 std::abs(other.distance - nb.distance) < 1e-9;
        });
    if (!found) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(RobustInjectorTest, SameSeedSameWorkloadSameFaultSchedule) {
  robust::FaultPlan plan;
  plan.seed = 99;
  plan.page_read_fault_rate = 0.3;
  plan.metrics = nullptr;
  robust::FaultInjector a(plan);
  robust::FaultInjector b(plan);
  std::vector<bool> faults_a, faults_b;
  for (PageId p = 0; p < 200; ++p) {
    faults_a.push_back(!a.OnPageRead(p).ok());
    faults_b.push_back(!b.OnPageRead(p).ok());
  }
  EXPECT_EQ(faults_a, faults_b);
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u);
  EXPECT_LT(a.faults_injected(), 200u);
}

TEST(RobustInjectorTest, CrashFailsEveryReadUntilRestore) {
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  robust::FaultInjector injector(plan);
  EXPECT_TRUE(injector.OnPageRead(0).ok());
  injector.Crash();
  EXPECT_TRUE(injector.crashed());
  // A down server is kUnavailable — deterministic, so retry policies must
  // not burn budget on it (unlike the transient kIOError hazards).
  EXPECT_TRUE(injector.OnPageRead(0).IsUnavailable());
  EXPECT_TRUE(injector.OnPageRead(1).IsUnavailable());
  injector.Restore();
  EXPECT_FALSE(injector.crashed());
  EXPECT_TRUE(injector.OnPageRead(2).ok());
}

TEST(RobustInjectorTest, ScheduledCrashFiresBetweenReads) {
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  robust::FaultInjector injector(plan);
  injector.CrashAfterPageReads(2);
  EXPECT_TRUE(injector.OnPageRead(0).ok());
  EXPECT_TRUE(injector.OnPageRead(1).ok());
  EXPECT_TRUE(injector.OnPageRead(2).IsUnavailable());
  EXPECT_TRUE(injector.crashed());
  EXPECT_TRUE(injector.OnPageRead(3).IsUnavailable());
  injector.Restore();
  EXPECT_FALSE(injector.crashed());
  EXPECT_TRUE(injector.OnPageRead(4).ok());
  // Restore also cancels a not-yet-fired schedule.
  injector.CrashAfterPageReads(1);
  injector.Restore();
  EXPECT_TRUE(injector.OnPageRead(5).ok());
  EXPECT_TRUE(injector.OnPageRead(6).ok());
}

TEST(RobustInjectorTest, ScriptedFaultsConsumeThemselves) {
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  robust::FaultInjector injector(plan);
  injector.FailNextPageReads(2);
  EXPECT_TRUE(injector.OnPageRead(0).IsIOError());
  EXPECT_TRUE(injector.OnPageRead(0).IsIOError());
  EXPECT_TRUE(injector.OnPageRead(0).ok());
  EXPECT_EQ(injector.faults_injected(), 2u);
}

TEST(RobustInjectorTest, CountsFaultsByKindInCallerOwnedRegistry) {
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry, nullptr);
  robust::FaultPlan plan;
  plan.metrics = &sink;
  robust::FaultInjector injector(plan);
  injector.FailNextPageReads(3);
  for (PageId p = 0; p < 5; ++p) (void)injector.OnPageRead(p);
  injector.Crash();
  (void)injector.OnPageRead(0);
  EXPECT_EQ(registry
                .GetCounter("msq_fault_injected_total", "",
                            "kind=\"page_read\"")
                ->Value(),
            3u);
  EXPECT_EQ(registry.GetCounter("msq_fault_injected_total", "",
                                "kind=\"crash\"")
                ->Value(),
            1u);
}

// ---------------------------------------------------------------------
// Engine under faults
// ---------------------------------------------------------------------

// The no-op contract of the decorator: with the injector quiescent, the
// wrapped database answers identically (same answers, same I/O accounting)
// to an unwrapped one.
TEST(RobustEngineTest, QuiescentInjectorIsAnExactNoOp) {
  Dataset dataset = MakeUniformDataset(500, 4, 1201);
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  auto injector = std::make_shared<robust::FaultInjector>(plan);
  auto faulty = OpenScanDb(dataset, injector);
  auto plain = OpenScanDb(dataset);

  std::vector<Query> batch;
  for (uint64_t i = 0; i < 8; ++i) {
    batch.push_back(Query{200 + i, dataset.object(static_cast<ObjectId>(i * 7)),
                          i % 2 == 0 ? QueryType::Knn(5)
                                     : QueryType::Range(0.3)});
  }
  auto got_faulty = faulty->MultipleSimilarityQueryAll(batch);
  auto got_plain = plain->MultipleSimilarityQueryAll(batch);
  ASSERT_TRUE(got_faulty.ok()) << got_faulty.status().ToString();
  ASSERT_TRUE(got_plain.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*got_faulty)[i], (*got_plain)[i])) << i;
  }
  EXPECT_EQ(faulty->stats().TotalPageReads(), plain->stats().TotalPageReads());
  EXPECT_EQ(faulty->stats().dist_computations,
            plain->stats().dist_computations);
  EXPECT_EQ(injector->faults_injected(), 0u);
}

// A transient page-read fault fails the call, but the engine rolls the
// failed page's accounting back, so the retry resumes — and the final
// answers are exactly the fault-free ones. (Without the rollback the
// failed page would be skipped forever and answers would silently miss
// its objects.)
TEST(RobustEngineTest, TransientFaultFailsThenRecoversExactly) {
  Dataset dataset = MakeUniformDataset(600, 4, 1203);
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  auto injector = std::make_shared<robust::FaultInjector>(plan);
  auto db = OpenScanDb(dataset, injector);
  EuclideanMetric metric;

  const Query q{301, dataset.object(11), QueryType::Knn(7)};
  injector->FailNextPageReads(1);
  auto failed = db->MultipleSimilarityQueryAll({q});
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status().ToString();

  // Retry on the same engine: buffered partial state resumes, the
  // previously failed page is revisited, answers are exact.
  auto retried = db->MultipleSimilarityQueryAll({q});
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(SameAnswers((*retried)[0], BruteForceQuery(dataset, metric, q)));
  EXPECT_EQ(injector->faults_injected(), 1u);
}

// Per-query deadline: an expired deadline returns DeadlineExceeded *with*
// the buffered partial answers; the query stays resumable and a later
// call without the deadline completes it exactly.
TEST(RobustEngineTest, DeadlineReturnsPartialAnswersAndStaysResumable) {
  Dataset dataset = MakeUniformDataset(500, 4, 1205);
  // Every page read stalls 1ms, so a 3ms deadline expires mid-scan.
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  plan.latency_spike_rate = 1.0;
  plan.latency_spike = std::chrono::milliseconds(1);
  auto injector = std::make_shared<robust::FaultInjector>(plan);

  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry, nullptr);
  MultiQueryOptions multi;
  multi.metrics = &sink;
  auto db = OpenScanDb(dataset, injector, multi);
  EuclideanMetric metric;

  // A range query's partial answers are a subset of its full answers
  // (kNN partials may still contain objects the full answer evicts).
  Query q{401, dataset.object(3), QueryType::Range(10.0)};
  const AnswerSet full = BruteForceQuery(dataset, metric, q);
  ASSERT_GT(full.size(), 0u);

  q.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(3);
  auto got = db->MultipleSimilarityQuery({q});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->status.IsDeadlineExceeded()) << got->status.ToString();
  EXPECT_LT(got->answers[0].size(), full.size());
  EXPECT_TRUE(SubsetOf(got->answers[0], full));
  EXPECT_EQ(
      registry.GetCounter("msq_engine_deadline_hits_total")->Value(), 1u);

  // Same query, no deadline: resumes from the buffered partial state and
  // completes exactly.
  q.deadline = kNoDeadline;
  auto completed = db->MultipleSimilarityQueryAll({q});
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  EXPECT_TRUE(SameAnswers((*completed)[0], full));
  EXPECT_EQ(
      registry.GetCounter("msq_engine_deadline_hits_total")->Value(), 1u);
}

// ExecuteAllPartial: the deadline failure of one query's window stays that
// query's alone; its batchmates complete exactly.
TEST(RobustEngineTest, BatchIsolatesDeadlineFailurePerQuery) {
  Dataset dataset = MakeUniformDataset(500, 4, 1207);
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  plan.latency_spike_rate = 1.0;
  plan.latency_spike = std::chrono::milliseconds(1);
  auto injector = std::make_shared<robust::FaultInjector>(plan);
  auto db = OpenScanDb(dataset, injector);
  EuclideanMetric metric;

  Query ok_query{501, dataset.object(5), QueryType::Knn(4)};
  Query doomed{502, dataset.object(9), QueryType::Range(10.0)};
  // Already expired when its window starts.
  doomed.deadline = std::chrono::steady_clock::now();

  auto got = db->MultipleSimilarityQueryAllPartial({ok_query, doomed});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->statuses.size(), 2u);
  EXPECT_TRUE(got->statuses[0].ok()) << got->statuses[0].ToString();
  EXPECT_TRUE(got->statuses[1].IsDeadlineExceeded());
  EXPECT_TRUE(
      SameAnswers(got->answers[0], BruteForceQuery(dataset, metric, ok_query)));
  // The doomed window still surfaced whatever the ok window's I/O sharing
  // had buffered for it — a valid partial answer.
  EXPECT_TRUE(SubsetOf(got->answers[1],
                       BruteForceQuery(dataset, metric, doomed)));
}

// ---------------------------------------------------------------------
// Cluster under faults
// ---------------------------------------------------------------------

struct ClusterFixture {
  Dataset dataset;
  std::shared_ptr<const Metric> metric;
  std::vector<std::shared_ptr<robust::FaultInjector>> injectors;
  std::unique_ptr<SharedNothingCluster> cluster;
};

ClusterFixture MakeFaultyCluster(size_t servers, uint64_t seed,
                                 ClusterRetryPolicy retry = {},
                                 bool partial_results = false) {
  ClusterFixture fx;
  fx.dataset = MakeUniformDataset(800, 4, seed);
  fx.metric = std::make_shared<EuclideanMetric>();
  ClusterOptions options;
  options.num_servers = servers;
  options.strategy = DeclusterStrategy::kRoundRobin;
  options.server_options.backend = BackendKind::kLinearScan;
  options.server_options.page_size_bytes = 2048;
  options.retry = retry;
  options.partial_results = partial_results;
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  for (size_t i = 0; i < servers; ++i) {
    fx.injectors.push_back(std::make_shared<robust::FaultInjector>(plan));
  }
  options.server_faults = fx.injectors;
  auto cluster = SharedNothingCluster::Create(fx.dataset, fx.metric, options);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  fx.cluster = std::move(cluster).value();
  return fx;
}

std::vector<Query> ClusterQueries(const Dataset& ds) {
  std::vector<Query> queries;
  for (uint64_t i = 0; i < 6; ++i) {
    queries.push_back(Query{700 + i, ds.object(static_cast<ObjectId>(i * 13)),
                            i % 2 == 0 ? QueryType::Knn(5)
                                       : QueryType::Range(0.25)});
  }
  return queries;
}

// A crashed server degrades the answers, not the call: the partial result
// names the missing partition and the merged answers are exactly the
// brute-force answers over the surviving partitions.
TEST(RobustClusterTest, CrashedServerYieldsPartialResultsWithMissingPartition) {
  ClusterFixture fx = MakeFaultyCluster(4, 1301);
  const std::vector<Query> queries = ClusterQueries(fx.dataset);
  fx.injectors[1]->Crash();

  auto got = fx.cluster->ExecuteMultipleAllPartial(queries);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->missing_servers, (std::vector<size_t>{1}));
  ASSERT_EQ(got->server_status.size(), 4u);
  EXPECT_TRUE(got->server_status[1].IsUnavailable());

  // Oracle: brute force over the union of the surviving partitions.
  std::vector<Vec> surviving;
  std::vector<ObjectId> surviving_global;
  for (size_t s = 0; s < 4; ++s) {
    if (s == 1) continue;
    for (ObjectId global : fx.cluster->partitions()[s]) {
      surviving.push_back(fx.dataset.object(global));
      surviving_global.push_back(global);
    }
  }
  Dataset surviving_ds(fx.dataset.dim(), surviving);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    AnswerSet expected =
        BruteForceQuery(surviving_ds, *fx.metric, queries[qi]);
    for (Neighbor& nb : expected) nb.id = surviving_global[nb.id];
    std::sort(expected.begin(), expected.end());
    EXPECT_TRUE(SameAnswers(got->answers[qi], expected)) << "query " << qi;
  }
}

// The strict path aggregates *every* failed server into one status
// instead of reporting only the first.
TEST(RobustClusterTest, StrictFailureNamesEveryFailedServer) {
  ClusterFixture fx = MakeFaultyCluster(4, 1303);
  fx.injectors[1]->Crash();
  fx.injectors[3]->Crash();
  auto got = fx.cluster->ExecuteMultipleAll(ClusterQueries(fx.dataset));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable());
  const std::string& msg = got.status().message();
  EXPECT_NE(msg.find("2 of 4 servers failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("server 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("server 3"), std::string::npos) << msg;
}

// partial_results mode: ExecuteMultipleAll itself degrades, failing only
// on a total outage.
TEST(RobustClusterTest, PartialResultsModeServesSurvivors) {
  ClusterFixture fx =
      MakeFaultyCluster(3, 1305, ClusterRetryPolicy{}, /*partial_results=*/true);
  const std::vector<Query> queries = ClusterQueries(fx.dataset);
  fx.injectors[2]->Crash();
  auto got = fx.cluster->ExecuteMultipleAll(queries);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), queries.size());

  for (auto& injector : fx.injectors) injector->Crash();
  // Fresh queries: the first batch's answers are still buffered on the
  // surviving servers and would be served without touching the (now
  // crashed) disks at all.
  std::vector<Query> fresh = queries;
  for (Query& q : fresh) q.id += 100;
  auto all_down = fx.cluster->ExecuteMultipleAll(fresh);
  ASSERT_FALSE(all_down.ok());
  EXPECT_NE(all_down.status().message().find("3 of 3 servers failed"),
            std::string::npos)
      << all_down.status().message();
}

// A transient fault on one server succeeds after a bounded retry; the
// answers are exact and the retry is counted.
TEST(RobustClusterTest, TransientFaultRecoversThroughRetry) {
  ClusterRetryPolicy retry;
  retry.max_retries = 2;
  ClusterFixture fx = MakeFaultyCluster(4, 1307, retry);
  const std::vector<Query> queries = ClusterQueries(fx.dataset);
  fx.injectors[2]->FailNextPageReads(1);

  auto got = fx.cluster->ExecuteMultipleAll(queries);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GE(fx.cluster->retries_attempted(), 1u);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_TRUE(SameAnswers(
        (*got)[qi], BruteForceQuery(fx.dataset, *fx.metric, queries[qi])))
        << "query " << qi;
  }
}

// A crash is deterministic (kUnavailable): retrying the same server could
// only waste the budget, so the retry loop skips it entirely and the
// failure surfaces at once.
TEST(RobustClusterTest, CrashSkipsTheRetryBudget) {
  ClusterRetryPolicy retry;
  retry.max_retries = 2;
  ClusterFixture fx = MakeFaultyCluster(2, 1309, retry);
  fx.injectors[0]->Crash();
  auto got = fx.cluster->ExecuteMultipleAll(ClusterQueries(fx.dataset));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable());
  EXPECT_EQ(fx.cluster->retries_attempted(), 0u);
}

// Exhausted retries surface a *transient* failure that outlived the
// budget — and every attempt is counted.
TEST(RobustClusterTest, ExhaustedRetriesSurfaceATransientFailure) {
  ClusterRetryPolicy retry;
  retry.max_retries = 2;
  ClusterFixture fx = MakeFaultyCluster(2, 1311, retry);
  // More scripted transient faults than the budget can absorb: every
  // attempt (1 initial + 2 retries) fails on its first page read.
  fx.injectors[0]->FailNextPageReads(10);
  auto got = fx.cluster->ExecuteMultipleAll(ClusterQueries(fx.dataset));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError());
  EXPECT_EQ(fx.cluster->retries_attempted(), 2u);
}

// Satellite regression: a server dying *between* two page reads of an
// in-flight batch fails the call with kUnavailable, and the DiskModel
// accounting stays honest — the interrupted attempt charges exactly one
// extra (failed) page read over a fault-free twin, and after Restore()
// the resumed run completes exactly.
TEST(RobustEngineTest, MidBatchCrashIsUnavailableWithHonestAccounting) {
  Dataset dataset = MakeUniformDataset(600, 4, 1313);
  EuclideanMetric metric;
  robust::FaultPlan plan;
  plan.metrics = nullptr;
  auto injector = std::make_shared<robust::FaultInjector>(plan);
  auto faulty = OpenScanDb(dataset, injector);
  auto plain = OpenScanDb(dataset);

  std::vector<Query> batch;
  for (uint64_t i = 0; i < 4; ++i) {
    batch.push_back(Query{950 + i, dataset.object(static_cast<ObjectId>(i * 9)),
                          i % 2 == 0 ? QueryType::Knn(5)
                                     : QueryType::Range(0.3)});
  }
  // Crash between the 3rd and 4th page read of the batch.
  injector->CrashAfterPageReads(3);
  auto crashed = faulty->MultipleSimilarityQueryAll(batch);
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(crashed.status().IsUnavailable()) << crashed.status().ToString();
  EXPECT_EQ(injector->faults_injected(), 1u);
  // Honest accounting, part 1: a failed call bills nothing to the caller's
  // stats surface — the engine charges a call-local QueryStats and merges
  // it only on the success epilogue, so an aborted attempt cannot inflate
  // modeled costs (and a later retry cannot double-bill the same pages).
  EXPECT_EQ(faulty->stats().TotalPageReads(), 0u);
  EXPECT_EQ(faulty->stats().buffer_hits, 0u);

  injector->Restore();
  auto resumed = faulty->MultipleSimilarityQueryAll(batch);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  auto reference = plain->MultipleSimilarityQueryAll(batch);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameAnswers((*resumed)[i], (*reference)[i])) << "query " << i;
  }
  // Honest accounting, part 2: the resumed call pays for everything it
  // actually does. The failed page's accounting was rolled back, so it is
  // re-read for real (it cannot be silently skipped); the 3 pages the
  // crashed attempt completed stay accounted in the buffered query state
  // and are skipped — visible as pages_skipped_buffered, not billed as
  // fresh reads.
  EXPECT_GT(faulty->stats().TotalPageReads(), 0u);
  EXPECT_GE(faulty->stats().pages_skipped_buffered, 3u);
}

// ---------------------------------------------------------------------
// Seed sweep (the fault-smoke CI job runs this under ASan)
// ---------------------------------------------------------------------

// Probabilistic faults across a seed sweep: whatever the schedule, bounded
// retries eventually complete every query exactly — the error paths leak
// nothing and corrupt nothing (ASan watches allocations, the oracle
// watches answers).
TEST(RobustSmokeTest, SeedSweepWithProbabilisticFaultsStaysExact) {
  Dataset dataset = MakeUniformDataset(400, 4, 1401);
  EuclideanMetric metric;
  uint64_t total_faults = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    robust::FaultPlan plan;
    plan.metrics = nullptr;
    plan.seed = seed;
    plan.page_read_fault_rate = 0.25;
    auto injector = std::make_shared<robust::FaultInjector>(plan);
    auto db = OpenScanDb(dataset, injector);

    std::vector<Query> batch;
    for (uint64_t i = 0; i < 4; ++i) {
      batch.push_back(Query{900 + i,
                            dataset.object(static_cast<ObjectId>(i * 31)),
                            i % 2 == 0 ? QueryType::Knn(6)
                                       : QueryType::Range(0.3)});
    }
    // Retry until the whole batch completes; each attempt resumes from
    // the buffered state, so progress is monotone and this terminates.
    StatusOr<BatchResult> got = db->MultipleSimilarityQueryAllPartial(batch);
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (got.ok() && std::all_of(got->statuses.begin(), got->statuses.end(),
                                  [](const Status& st) { return st.ok(); })) {
        break;
      }
      got = db->MultipleSimilarityQueryAllPartial(batch);
    }
    ASSERT_TRUE(got.ok()) << "seed " << seed;
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(got->statuses[i].ok())
          << "seed " << seed << " query " << i << " never completed: "
          << got->statuses[i].ToString();
      EXPECT_TRUE(SameAnswers(got->answers[i],
                              BruteForceQuery(dataset, metric, batch[i])))
          << "seed " << seed << " query " << i;
    }
    total_faults += injector->faults_injected();
  }
  // Whether a specific seed faults depends on its draw sequence; the
  // sweep as a whole must have exercised the error path.
  EXPECT_GT(total_faults, 0u);
}

}  // namespace
}  // namespace msq
