// Tests of the batch-admission service: answers from concurrently
// submitted single queries must be identical to sequential single-query
// execution, failed batches must propagate their Status to every waiter,
// and the flush policy (size / deadline / drain) must complete every
// admitted query.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "parallel/thread_pool.h"
#include "service/batch_scheduler.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

std::unique_ptr<MetricDatabase> OpenScanDb(Dataset dataset,
                                           MultiQueryOptions multi = {}) {
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.page_size_bytes = 2048;
  options.multi = multi;
  auto db = MetricDatabase::Open(std::move(dataset),
                                 std::make_shared<EuclideanMetric>(), options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// Deterministic mixed range/kNN query stream with distinct fresh ids
/// (above the MetricDatabase fresh-id floor so nothing collides).
std::vector<Query> MixedQueryStream(const Dataset& ds, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query q;
    q.id = (static_cast<QueryId>(1) << 40) + i;
    q.point = ds.object(static_cast<ObjectId>(rng.NextIndex(ds.size())));
    if (i % 2 == 0) {
      q.type = QueryType::Knn(1 + rng.NextIndex(10));
    } else {
      q.type = QueryType::Range(rng.NextDouble(0.05, 0.4));
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

// The acceptance stress test: >= 10k mixed queries from >= 4 producer
// threads, answers identical to sequential single-query execution.
TEST(BatchSchedulerTest, StressAnswersMatchSequentialSingleQueries) {
  constexpr size_t kQueries = 10000;
  constexpr size_t kProducers = 4;
  Dataset dataset = MakeUniformDataset(500, 4, 901);
  auto db = OpenScanDb(dataset);
  const std::vector<Query> queries = MixedQueryStream(dataset, kQueries, 903);

  // Sequential oracle: the same queries one by one on an identical db.
  auto oracle_db = OpenScanDb(dataset);
  std::vector<AnswerSet> expected(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    auto got = oracle_db->SimilarityQuery(queries[i]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    expected[i] = std::move(got).value();
  }

  ThreadPool pool(4);
  AggregateStats sink;
  BatchSchedulerOptions options;
  options.max_batch_size = 50;
  options.flush_deadline = std::chrono::microseconds(500);
  BatchScheduler scheduler(&db->engine(), &pool, options, &sink);

  std::vector<AnswerFuture> futures(kQueries);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = p; i < kQueries; i += kProducers) {
        futures[i] = scheduler.Submit(queries[i]);
      }
    });
  }
  for (auto& t : producers) t.join();
  scheduler.Drain();

  for (size_t i = 0; i < kQueries; ++i) {
    auto got = futures[i].get();
    ASSERT_TRUE(got.ok()) << "query " << i << ": " << got.status().ToString();
    EXPECT_TRUE(SameAnswers(*got, expected[i])) << "query " << i;
  }
  EXPECT_EQ(scheduler.queries_submitted(), kQueries);
  // Every admitted query completed exactly once across all batches.
  EXPECT_EQ(sink.Snapshot().queries_completed, kQueries);
  EXPECT_EQ(sink.batches_merged(), scheduler.batches_executed());
}

TEST(BatchSchedulerTest, FailedBatchPropagatesStatusToEveryWaiter) {
  Dataset dataset = MakeUniformDataset(300, 4, 905);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(10);  // manual flushes only
  BatchScheduler scheduler(&db->engine(), &pool, options);

  // Complete query id 42 so the engine buffers its definition.
  Query original{42, dataset.object(0), QueryType::Knn(3)};
  auto first = scheduler.Submit(original);
  scheduler.Drain();
  ASSERT_TRUE(first.get().ok());

  // Re-submitting id 42 with a different point is only detectable by the
  // engine (it is no longer pending), so the whole batch it rides in
  // fails — and every waiter of that batch must see the batch's status.
  Query poisoned{42, dataset.object(1), QueryType::Knn(3)};
  auto f1 = scheduler.Submit(poisoned);
  auto f2 = scheduler.Submit(Query{43, dataset.object(2), QueryType::Knn(3)});
  auto f3 = scheduler.Submit(Query{44, dataset.object(3), QueryType::Range(0.2)});
  scheduler.Drain();

  auto r1 = f1.get();
  auto r2 = f2.get();
  auto r3 = f3.get();
  EXPECT_TRUE(r1.status().IsInvalidArgument());
  EXPECT_TRUE(r2.status().IsInvalidArgument());
  EXPECT_TRUE(r3.status().IsInvalidArgument());
  EXPECT_EQ(r1.status(), r2.status());
  EXPECT_EQ(r1.status(), r3.status());

  // The scheduler stays serviceable after a failed batch.
  auto ok = scheduler.Submit(Query{45, dataset.object(4), QueryType::Knn(2)});
  scheduler.Drain();
  EXPECT_TRUE(ok.get().ok());
}

TEST(BatchSchedulerTest, ConflictingPendingSubmissionFailsAlone) {
  Dataset dataset = MakeUniformDataset(300, 4, 907);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(10);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  auto good = scheduler.Submit(Query{7, dataset.object(0), QueryType::Knn(3)});
  // Same id, different point, while the first is still pending: rejected
  // at admission, the pending batch is unharmed.
  auto clash = scheduler.Submit(Query{7, dataset.object(1), QueryType::Knn(3)});
  auto clash_result = clash.get();  // fails immediately, no flush needed
  EXPECT_TRUE(clash_result.status().IsInvalidArgument());

  scheduler.Drain();
  auto good_result = good.get();
  ASSERT_TRUE(good_result.ok()) << good_result.status().ToString();
  EuclideanMetric metric;
  EXPECT_TRUE(SameAnswers(
      *good_result,
      BruteForceQuery(dataset, metric,
                      Query{7, dataset.object(0), QueryType::Knn(3)})));
}

TEST(BatchSchedulerTest, IdenticalPendingSubmissionsAreCoalesced) {
  Dataset dataset = MakeUniformDataset(300, 4, 909);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(10);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  const Query q{11, dataset.object(5), QueryType::Knn(4)};
  auto f1 = scheduler.Submit(q);
  auto f2 = scheduler.Submit(q);
  EXPECT_EQ(scheduler.pending_size(), 1u);
  EXPECT_EQ(scheduler.queries_coalesced(), 1u);
  scheduler.Drain();
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(SameAnswers(*r1, *r2));
  EXPECT_EQ(scheduler.batches_executed(), 1u);
}

TEST(BatchSchedulerTest, EmptyPointFailsImmediatelyWithoutPoisoningBatch) {
  Dataset dataset = MakeUniformDataset(200, 4, 911);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.flush_deadline = std::chrono::seconds(10);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  auto good = scheduler.Submit(Query{1, dataset.object(0), QueryType::Knn(2)});
  auto bad = scheduler.Submit(Query{2, Vec{}, QueryType::Knn(2)});
  EXPECT_TRUE(bad.get().status().IsInvalidArgument());
  scheduler.Drain();
  EXPECT_TRUE(good.get().ok());
}

TEST(BatchSchedulerTest, DeadlineFlushCompletesWithoutExplicitFlush) {
  Dataset dataset = MakeUniformDataset(200, 4, 913);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 1000;  // never size-triggered
  options.flush_deadline = std::chrono::microseconds(1000);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  auto f = scheduler.Submit(Query{1, dataset.object(3), QueryType::Knn(3)});
  // No Flush()/Drain(): only the deadline can complete this future.
  auto result = f.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 3u);
}

TEST(BatchSchedulerTest, ZeroDeadlineFlushesEverySubmissionImmediately) {
  Dataset dataset = MakeUniformDataset(200, 4, 915);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 1000;
  options.flush_deadline = std::chrono::microseconds(0);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  auto f1 = scheduler.Submit(Query{1, dataset.object(0), QueryType::Knn(2)});
  auto f2 = scheduler.Submit(Query{2, dataset.object(1), QueryType::Knn(2)});
  EXPECT_EQ(scheduler.pending_size(), 0u);  // flushed at submit time
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  scheduler.Drain();
  EXPECT_EQ(scheduler.batches_executed(), 2u);
}

TEST(BatchSchedulerTest, SizeTriggeredFlushDoesNotWaitForDeadline) {
  Dataset dataset = MakeUniformDataset(200, 4, 917);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 2;
  options.flush_deadline = std::chrono::seconds(60);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  auto f1 = scheduler.Submit(Query{1, dataset.object(0), QueryType::Knn(2)});
  auto f2 = scheduler.Submit(Query{2, dataset.object(1), QueryType::Knn(2)});
  // The second submission fills the batch; both futures complete without
  // any explicit flush and far before the 60 s deadline.
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
}

TEST(BatchSchedulerTest, SubmitAfterShutdownFailsFast) {
  Dataset dataset = MakeUniformDataset(200, 4, 919);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchScheduler scheduler(&db->engine(), &pool, {});
  scheduler.Shutdown();
  auto f = scheduler.Submit(Query{1, dataset.object(0), QueryType::Knn(2)});
  EXPECT_TRUE(f.get().status().IsResourceExhausted());
}

TEST(BatchSchedulerTest, MaxBatchSizeIsClampedToEngineLimit) {
  Dataset dataset = MakeUniformDataset(200, 4, 921);
  MultiQueryOptions multi;
  multi.max_batch_size = 8;
  auto db = OpenScanDb(dataset, multi);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 100;  // larger than the engine accepts
  options.flush_deadline = std::chrono::seconds(10);
  BatchScheduler scheduler(&db->engine(), &pool, options);
  EXPECT_EQ(scheduler.options().max_batch_size, 8u);

  // 20 quick submissions: no batch may exceed the engine limit, so all
  // queries still succeed (an unclamped scheduler would get the whole
  // batch rejected with ResourceExhausted).
  std::vector<AnswerFuture> futures;
  for (uint64_t i = 0; i < 20; ++i) {
    futures.push_back(scheduler.Submit(
        Query{100 + i, dataset.object(static_cast<ObjectId>(i)),
              QueryType::Knn(2)}));
  }
  scheduler.Drain();
  for (auto& f : futures) {
    auto r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(BatchSchedulerTest, AggregateStatsMergesEveryBatch) {
  Dataset dataset = MakeUniformDataset(400, 4, 923);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  AggregateStats sink;
  BatchSchedulerOptions options;
  options.max_batch_size = 4;
  options.flush_deadline = std::chrono::seconds(10);
  BatchScheduler scheduler(&db->engine(), &pool, options, &sink);

  const auto queries = MixedQueryStream(dataset, 12, 925);
  std::vector<AnswerFuture> futures;
  for (const Query& q : queries) futures.push_back(scheduler.Submit(q));
  scheduler.Drain();
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  const QueryStats total = sink.Snapshot();
  EXPECT_EQ(total.queries_completed, queries.size());
  EXPECT_GT(total.dist_computations, 0u);
  EXPECT_GT(total.TotalPageReads(), 0u);
  EXPECT_EQ(sink.batches_merged(), 3u);  // 12 queries / batches of 4
  sink.Reset();
  EXPECT_EQ(sink.Snapshot().queries_completed, 0u);
  EXPECT_EQ(sink.batches_merged(), 0u);
}

TEST(BatchSchedulerTest, FlushReasonsAreAttributed) {
  Dataset dataset = MakeUniformDataset(200, 4, 929);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 2;
  options.flush_deadline = std::chrono::seconds(60);  // never deadline
  BatchScheduler scheduler(&db->engine(), &pool, options);

  // Two submissions fill the batch: one size flush.
  auto f1 = scheduler.Submit(Query{1, dataset.object(0), QueryType::Knn(2)});
  auto f2 = scheduler.Submit(Query{2, dataset.object(1), QueryType::Knn(2)});
  // One pending + explicit Flush(): one explicit flush.
  auto f3 = scheduler.Submit(Query{3, dataset.object(2), QueryType::Knn(2)});
  scheduler.Flush();
  // One pending + Drain(): one drain flush.
  auto f4 = scheduler.Submit(Query{4, dataset.object(3), QueryType::Knn(2)});
  scheduler.Drain();
  // Drain with nothing pending flushes nothing.
  scheduler.Drain();

  for (auto* f : {&f1, &f2, &f3, &f4}) ASSERT_TRUE(f->get().ok());
  const FlushCounts counts = scheduler.flush_counts();
  EXPECT_EQ(counts.size, 1u);
  EXPECT_EQ(counts.deadline, 0u);
  EXPECT_EQ(counts.explicit_flush, 1u);
  EXPECT_EQ(counts.drain, 1u);
  EXPECT_EQ(scheduler.batches_executed(), 3u);
}

TEST(BatchSchedulerTest, ZeroDeadlineFlushesCountAsDeadline) {
  Dataset dataset = MakeUniformDataset(200, 4, 931);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 1000;
  options.flush_deadline = std::chrono::microseconds(0);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  auto f1 = scheduler.Submit(Query{1, dataset.object(0), QueryType::Knn(2)});
  auto f2 = scheduler.Submit(Query{2, dataset.object(1), QueryType::Knn(2)});
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  // An already-overdue submission is a deadline flush, not a size flush.
  const FlushCounts counts = scheduler.flush_counts();
  EXPECT_EQ(counts.deadline, 2u);
  EXPECT_EQ(counts.size, 0u);
}

// Regression: the deadline timer must arm from the *oldest pending*
// submission. A timer re-armed from the latest submission is starved
// forever by a steady trickle of sub-deadline arrivals, and the first
// query never completes.
TEST(BatchSchedulerTest, DeadlineArmsFromOldestPendingSubmission) {
  Dataset dataset = MakeUniformDataset(200, 4, 933);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 1000;  // never size-triggered
  options.flush_deadline = std::chrono::milliseconds(20);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  auto first = scheduler.Submit(Query{1, dataset.object(0), QueryType::Knn(2)});
  // Keep the batch perpetually "fresh": a new submission every 5 ms, far
  // below the 20 ms deadline, until `first` completes.
  std::atomic<bool> stop{false};
  std::vector<AnswerFuture> fillers;
  std::thread feeder([&] {
    uint64_t id = 100;
    while (!stop.load(std::memory_order_relaxed)) {
      fillers.push_back(scheduler.Submit(
          Query{id, dataset.object(static_cast<ObjectId>(id % 200)),
                QueryType::Knn(2)}));
      ++id;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const auto status = first.wait_for(std::chrono::seconds(5));
  stop.store(true, std::memory_order_relaxed);
  feeder.join();
  ASSERT_EQ(status, std::future_status::ready)
      << "deadline timer starved by sub-deadline submissions";
  EXPECT_TRUE(first.get().ok());
  EXPECT_GE(scheduler.flush_counts().deadline, 1u);
  scheduler.Drain();
  for (auto& f : fillers) EXPECT_TRUE(f.get().ok());
}

TEST(BatchSchedulerTest, ObsMetricsPublishToCallerOwnedRegistry) {
  Dataset dataset = MakeUniformDataset(300, 4, 935);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry, nullptr);
  BatchSchedulerOptions options;
  options.max_batch_size = 4;
  options.flush_deadline = std::chrono::seconds(10);
  options.metrics = &sink;
  BatchScheduler scheduler(&db->engine(), &pool, options);

  const auto queries = MixedQueryStream(dataset, 10, 937);
  std::vector<AnswerFuture> futures;
  for (const Query& q : queries) futures.push_back(scheduler.Submit(q));
  scheduler.Drain();
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  EXPECT_EQ(registry.GetCounter("msq_scheduler_submitted_total")->Value(),
            queries.size());
  EXPECT_EQ(registry
                .GetCounter("msq_scheduler_flushes_total", "",
                            "reason=\"size\"")
                ->Value(),
            2u);  // 10 queries / batches of 4
  EXPECT_EQ(registry
                .GetCounter("msq_scheduler_flushes_total", "",
                            "reason=\"drain\"")
                ->Value(),
            1u);
  // Every admitted query fed the admission-wait and latency histograms;
  // every flush fed the batch-size histogram.
  EXPECT_EQ(registry
                .GetHistogram("msq_scheduler_admission_wait_micros",
                              obs::LatencyBoundariesMicros())
                ->Count(),
            queries.size());
  EXPECT_EQ(registry
                .GetHistogram("msq_scheduler_latency_micros",
                              obs::LatencyBoundariesMicros())
                ->Count(),
            queries.size());
  EXPECT_EQ(registry
                .GetHistogram("msq_scheduler_batch_size",
                              obs::SizeBoundaries())
                ->Count(),
            scheduler.batches_executed());
  // Quiescent: nothing queued, nothing in flight.
  EXPECT_EQ(registry.GetGauge("msq_scheduler_queue_depth")->Value(), 0);
  EXPECT_EQ(registry.GetGauge("msq_scheduler_inflight_batches")->Value(), 0);
}

// Regression: rejected submissions (empty point, conflicting definition,
// post-shutdown) used to increment queries_submitted_ and the exported
// submitted counter, skewing throughput metrics. They must be counted as
// rejections instead.
TEST(BatchSchedulerTest, RejectedSubmissionsDoNotCountAsSubmitted) {
  Dataset dataset = MakeUniformDataset(200, 4, 941);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry, nullptr);
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(10);
  options.metrics = &sink;
  BatchScheduler scheduler(&db->engine(), &pool, options);

  auto good = scheduler.Submit(Query{1, dataset.object(0), QueryType::Knn(2)});
  auto empty = scheduler.Submit(Query{2, {}, QueryType::Knn(2)});
  auto clash = scheduler.Submit(Query{1, dataset.object(1), QueryType::Knn(2)});
  EXPECT_TRUE(empty.get().status().IsInvalidArgument());
  EXPECT_TRUE(clash.get().status().IsInvalidArgument());
  scheduler.Drain();
  EXPECT_TRUE(good.get().ok());
  scheduler.Shutdown();
  auto late = scheduler.Submit(Query{3, dataset.object(2), QueryType::Knn(2)});
  EXPECT_TRUE(late.get().status().IsResourceExhausted());

  EXPECT_EQ(scheduler.queries_submitted(), 1u);
  EXPECT_EQ(scheduler.queries_rejected(), 3u);
  EXPECT_EQ(scheduler.queries_shed(), 0u);
  EXPECT_EQ(registry.GetCounter("msq_scheduler_submitted_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("msq_scheduler_rejected_total")->Value(), 3u);
  EXPECT_EQ(registry.GetCounter("msq_scheduler_shed_total")->Value(), 0u);
}

// Overload protection: a new query beyond max_pending admitted-but-
// unfulfilled queries is shed with ResourceExhausted; coalescing onto a
// pending query stays allowed (no queue pressure); admitted work drains
// normally.
TEST(BatchSchedulerTest, OverloadShedsNewQueriesButCoalescesPendingOnes) {
  Dataset dataset = MakeUniformDataset(200, 4, 943);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry, nullptr);
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(10);  // manual flushes only
  options.max_pending = 2;
  options.metrics = &sink;
  BatchScheduler scheduler(&db->engine(), &pool, options);

  const Query q1{1, dataset.object(0), QueryType::Knn(2)};
  auto f1 = scheduler.Submit(q1);
  auto f2 = scheduler.Submit(Query{2, dataset.object(1), QueryType::Knn(2)});
  EXPECT_EQ(scheduler.pending_size(), 2u);

  auto shed = scheduler.Submit(Query{3, dataset.object(2), QueryType::Knn(2)});
  auto shed_result = shed.get();
  EXPECT_TRUE(shed_result.status().IsResourceExhausted())
      << shed_result.status().ToString();
  // An identical resubmission of a pending query coalesces even at the
  // bound.
  auto dup = scheduler.Submit(q1);

  scheduler.Drain();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EXPECT_TRUE(dup.get().ok());
  EXPECT_EQ(scheduler.queries_shed(), 1u);
  EXPECT_EQ(scheduler.queries_submitted(), 3u);  // q1, q2, coalesced dup
  EXPECT_EQ(registry.GetCounter("msq_scheduler_shed_total")->Value(), 1u);

  // Capacity freed after the drain: the same query is admissible again.
  auto after = scheduler.Submit(Query{4, dataset.object(3), QueryType::Knn(2)});
  scheduler.Drain();
  EXPECT_TRUE(after.get().ok());
}

// The admission_check gate: while the backend reports itself unhealthy
// (e.g. a cluster that lost quorum), new submissions are shed with the
// gate's own status; identical pending queries still coalesce, and
// admission resumes the moment the gate clears.
TEST(BatchSchedulerTest, AdmissionCheckShedsWithBackendStatus) {
  Dataset dataset = MakeUniformDataset(200, 4, 947);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  std::atomic<bool> healthy{true};
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(10);  // manual flushes only
  options.admission_check = [&healthy]() {
    return healthy.load() ? Status::OK()
                          : Status::ResourceExhausted(
                                "quorum lost: no admissible replica for "
                                "partition(s) 1");
  };
  BatchScheduler scheduler(&db->engine(), &pool, options);

  const Query q1{1, dataset.object(0), QueryType::Knn(2)};
  auto f1 = scheduler.Submit(q1);

  healthy.store(false);
  auto shed = scheduler.Submit(Query{2, dataset.object(1), QueryType::Knn(2)});
  auto shed_result = shed.get();
  ASSERT_TRUE(shed_result.status().IsResourceExhausted())
      << shed_result.status().ToString();
  EXPECT_NE(shed_result.status().message().find("quorum lost"),
            std::string::npos)
      << shed_result.status().message();
  // Coalescing onto the already-admitted query bypasses the gate: it adds
  // no new work for the degraded backend.
  auto dup = scheduler.Submit(q1);

  healthy.store(true);
  auto after = scheduler.Submit(Query{3, dataset.object(2), QueryType::Knn(2)});
  scheduler.Drain();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(dup.get().ok());
  EXPECT_TRUE(after.get().ok());
  EXPECT_EQ(scheduler.queries_shed(), 1u);
  EXPECT_EQ(scheduler.queries_submitted(), 3u);  // q1, coalesced dup, q3
}

// A query whose deadline expired fails only its own waiter; batchmates
// riding in the same flushed batch are answered normally.
TEST(BatchSchedulerTest, ExpiredDeadlineFailsOnlyItsOwnWaiter) {
  Dataset dataset = MakeUniformDataset(300, 4, 945);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  BatchSchedulerOptions options;
  options.max_batch_size = 16;
  options.flush_deadline = std::chrono::seconds(10);
  BatchScheduler scheduler(&db->engine(), &pool, options);

  Query doomed{21, dataset.object(1), QueryType::Knn(3)};
  doomed.deadline = std::chrono::steady_clock::now();  // already expired
  auto ok1 = scheduler.Submit(Query{20, dataset.object(0), QueryType::Knn(3)});
  auto doomed_future = scheduler.Submit(doomed);
  auto ok2 = scheduler.Submit(Query{22, dataset.object(2), QueryType::Range(0.2)});
  scheduler.Drain();

  auto r_doomed = doomed_future.get();
  EXPECT_TRUE(r_doomed.status().IsDeadlineExceeded())
      << r_doomed.status().ToString();
  auto r1 = ok1.get();
  auto r2 = ok2.get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EuclideanMetric metric;
  EXPECT_TRUE(SameAnswers(
      *r1, BruteForceQuery(dataset, metric,
                           Query{20, dataset.object(0), QueryType::Knn(3)})));
  EXPECT_TRUE(SameAnswers(
      *r2, BruteForceQuery(dataset, metric,
                           Query{22, dataset.object(2), QueryType::Range(0.2)})));
}

// Concurrent producers against a tight max_pending bound: every future
// completes (answered, rejected, or shed), the books balance, and nothing
// races (this test runs under TSan in CI).
TEST(BatchSchedulerTest, ConcurrentOverloadSheddingKeepsBooksBalanced) {
  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 200;
  Dataset dataset = MakeUniformDataset(300, 4, 947);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(4);
  BatchSchedulerOptions options;
  options.max_batch_size = 4;
  options.flush_deadline = std::chrono::microseconds(200);
  options.max_pending = 2;  // tight: producers race the bound and get shed
  BatchScheduler scheduler(&db->engine(), &pool, options);

  std::atomic<uint64_t> answered{0}, shed{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        const uint64_t id = 1000 + p * kPerProducer + i;
        auto f = scheduler.Submit(
            Query{id, dataset.object(static_cast<ObjectId>(id % 300)),
                  QueryType::Knn(2)});
        auto r = f.get();
        if (r.ok()) {
          ++answered;
        } else {
          ASSERT_TRUE(r.status().IsResourceExhausted())
              << r.status().ToString();
          ++shed;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  scheduler.Drain();

  EXPECT_EQ(answered.load() + shed.load(), kProducers * kPerProducer);
  EXPECT_EQ(scheduler.queries_submitted(), answered.load());
  EXPECT_EQ(scheduler.queries_shed(), shed.load());
  EXPECT_EQ(scheduler.queries_rejected(), 0u);
}

TEST(BatchSchedulerTest, DestructorDrainsOutstandingWork) {
  Dataset dataset = MakeUniformDataset(300, 4, 927);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  std::vector<AnswerFuture> futures;
  {
    BatchSchedulerOptions options;
    options.max_batch_size = 100;
    options.flush_deadline = std::chrono::seconds(10);
    BatchScheduler scheduler(&db->engine(), &pool, options);
    for (uint64_t i = 0; i < 5; ++i) {
      futures.push_back(scheduler.Submit(
          Query{200 + i, dataset.object(static_cast<ObjectId>(i)),
                QueryType::Knn(2)}));
    }
  }  // destructor must flush and complete all 5
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
}

// ---------------------------------------------------------------------
// Custom batch executors + latency attribution
// ---------------------------------------------------------------------

TEST(BatchSchedulerTest, CustomExecutorRunsWithoutAnEngine) {
  Dataset dataset = MakeUniformDataset(300, 4, 951);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  std::atomic<int> executor_calls{0};
  BatchSchedulerOptions options;
  options.max_batch_size = 8;
  options.flush_deadline = std::chrono::seconds(10);
  // Executors run on pool threads and must provide their own
  // synchronization — the db is not thread-safe (the engine path gets this
  // from the scheduler's engine lock, a cluster from its own locking).
  std::mutex db_mu;
  options.executor = [&](const std::vector<Query>& queries,
                         QueryStats* stats) -> StatusOr<BatchResult> {
    executor_calls.fetch_add(1);
    std::lock_guard<std::mutex> lock(db_mu);
    auto answers = db->MultipleSimilarityQueryAll(queries);
    if (!answers.ok()) return answers.status();
    *stats += db->stats();
    BatchResult result;
    result.answers = std::move(answers).value();
    result.statuses.assign(queries.size(), Status::OK());
    return result;
  };
  BatchScheduler scheduler(nullptr, &pool, options);

  const auto queries = MixedQueryStream(dataset, 10, 953);
  std::vector<AnswerFuture> futures;
  for (const Query& q : queries) futures.push_back(scheduler.Submit(q));
  scheduler.Drain();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto expected = db->SimilarityQuery(queries[i]);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(SameAnswers(*got, *expected));
  }
  EXPECT_GT(executor_calls.load(), 0);
}

TEST(BatchSchedulerTest, NoEngineAndNoExecutorRejectsSubmissions) {
  ThreadPool pool(1);
  BatchSchedulerOptions options;
  BatchScheduler scheduler(nullptr, &pool, options);
  Query q{1, {0.1, 0.2}, QueryType::Knn(1)};
  auto f = scheduler.Submit(q);
  auto got = f.get();
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsInvalidArgument());
}

TEST(BatchSchedulerTest, AttributionComponentsCoverEndToEndLatency) {
  Dataset dataset = MakeUniformDataset(500, 4, 957);
  auto db = OpenScanDb(dataset);
  ThreadPool pool(2);
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry, nullptr);
  BatchSchedulerOptions options;
  options.max_batch_size = 8;
  options.flush_deadline = std::chrono::milliseconds(1);
  options.metrics = &sink;
  options.latency_window_seconds = 30.0;
  double e2e_micros = 0.0;
  double attributed_micros = 0.0;
  uint64_t hook_batches = 0;
  std::mutex mu;
  options.attribution_hook = [&](const obs::BatchAttribution& attr) {
    std::lock_guard<std::mutex> lock(mu);
    ++hook_batches;
    e2e_micros += attr.e2e_micros;
    attributed_micros += attr.AttributedMicros();
  };
  BatchScheduler scheduler(&db->engine(), &pool, options);

  const auto queries = MixedQueryStream(dataset, 64, 959);
  std::vector<AnswerFuture> futures;
  for (const Query& q : queries) futures.push_back(scheduler.Submit(q));
  scheduler.Drain();
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_GT(hook_batches, 0u);
  // Every component histogram cell observed once per query per batch.
  for (size_t c = 0; c < obs::kNumLatencyComponents; ++c) {
    const char* name =
        obs::LatencyComponentName(static_cast<obs::LatencyComponent>(c));
    EXPECT_EQ(registry
                  .GetHistogram("msq_latency_component_seconds",
                                obs::LatencySecondsBoundaries(), "",
                                std::string("component=\"") + name + "\"")
                  ->Count(),
              queries.size())
        << name;
  }
  // The attributed components must essentially cover measured end-to-end
  // latency: nothing big unaccounted, nothing double-counted. Engine-other
  // is the only residual (clamped >= 0), so attributed <= e2e always holds
  // up to timer granularity; allow 10% slack on the covering direction
  // for scheduling noise in CI.
  EXPECT_GT(attributed_micros, 0.0);
  EXPECT_GT(e2e_micros, 0.0);
  EXPECT_LE(attributed_micros, e2e_micros * 1.10);
  EXPECT_GE(attributed_micros, e2e_micros * 0.50);
  // The sliding-window latency histogram saw every query too.
  EXPECT_EQ(registry
                .GetSlidingHistogram("msq_scheduler_latency_window_micros",
                                     obs::LatencyBoundariesMicros(),
                                     std::chrono::seconds(30))
                ->Snap()
                .count,
            queries.size());
}

}  // namespace
}  // namespace msq
