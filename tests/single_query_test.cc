// Correctness of the single similarity query (Figure 1) on every backend,
// verified against the brute-force oracle over random workloads, plus the
// statistics the engines must charge.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "tests/test_util.h"

namespace msq {
namespace {

using testing::BruteForceQuery;
using testing::SameAnswers;

struct BackendCase {
  BackendKind kind;
  const char* name;
};

class SingleQueryBackendTest : public ::testing::TestWithParam<BackendCase> {
 protected:
  std::unique_ptr<MetricDatabase> OpenDb(Dataset dataset,
                                         size_t page_size = 2048) {
    DatabaseOptions options;
    options.backend = GetParam().kind;
    options.page_size_bytes = page_size;  // small pages -> deep trees
    auto metric = std::make_shared<EuclideanMetric>();
    auto db = MetricDatabase::Open(std::move(dataset), metric, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }
};

TEST_P(SingleQueryBackendTest, KnnMatchesBruteForce) {
  Dataset dataset = MakeGaussianClustersDataset(1500, 6, 8, 0.05, 101);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    Vec point(6);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    const size_t k = 1 + rng.NextIndex(20);
    Query q = db->MakeKnnQuery(point, k);
    auto got = db->SimilarityQuery(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const AnswerSet expected = BruteForceQuery(db->dataset(), metric, q);
    EXPECT_TRUE(SameAnswers(*got, expected))
        << "k=" << k << " trial=" << trial;
  }
}

TEST_P(SingleQueryBackendTest, RangeMatchesBruteForce) {
  Dataset dataset = MakeGaussianClustersDataset(1200, 5, 6, 0.05, 103);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  Rng rng(57);
  for (int trial = 0; trial < 30; ++trial) {
    Vec point(5);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    const double eps = rng.NextDouble(0.01, 0.4);
    Query q = db->MakeRangeQuery(point, eps);
    auto got = db->SimilarityQuery(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const AnswerSet expected = BruteForceQuery(db->dataset(), metric, q);
    EXPECT_TRUE(SameAnswers(*got, expected))
        << "eps=" << eps << " trial=" << trial;
  }
}

TEST_P(SingleQueryBackendTest, BoundedKnnMatchesBruteForce) {
  Dataset dataset = MakeGaussianClustersDataset(1000, 4, 5, 0.05, 107);
  auto db = OpenDb(dataset);
  EuclideanMetric metric;
  Rng rng(59);
  for (int trial = 0; trial < 30; ++trial) {
    Vec point(4);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    Query q = db->MakeBoundedKnnQuery(point, 1 + rng.NextIndex(10),
                                      rng.NextDouble(0.05, 0.3));
    auto got = db->SimilarityQuery(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const AnswerSet expected = BruteForceQuery(db->dataset(), metric, q);
    EXPECT_TRUE(SameAnswers(*got, expected)) << "trial=" << trial;
  }
}

TEST_P(SingleQueryBackendTest, QueryOnDatabaseObjectFindsItselfFirst) {
  Dataset dataset = MakeUniformDataset(800, 5, 109);
  auto db = OpenDb(dataset);
  for (ObjectId id : {0u, 13u, 799u}) {
    auto got = db->SimilarityQuery(db->MakeObjectKnnQuery(id, 3));
    ASSERT_TRUE(got.ok());
    ASSERT_FALSE(got->empty());
    EXPECT_EQ((*got)[0].id, id);
    EXPECT_NEAR((*got)[0].distance, 0.0, 1e-9);
  }
}

TEST_P(SingleQueryBackendTest, EmptyRangeQueryReturnsNothing) {
  Dataset dataset = MakeUniformDataset(500, 4, 111);
  auto db = OpenDb(dataset);
  Vec far_away(4, 100.0f);
  auto got = db->SimilarityQuery(db->MakeRangeQuery(far_away, 0.5));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_P(SingleQueryBackendTest, KnnLargerThanDatabaseReturnsEverything) {
  Dataset dataset = MakeUniformDataset(50, 3, 113);
  auto db = OpenDb(dataset);
  Vec point(3, 0.5f);
  auto got = db->SimilarityQuery(db->MakeKnnQuery(point, 500));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 50u);
}

TEST_P(SingleQueryBackendTest, StatsChargeDistancesAndPages) {
  Dataset dataset = MakeUniformDataset(600, 4, 115);
  auto db = OpenDb(dataset);
  db->ResetStats();
  Vec point(4, 0.5f);
  ASSERT_TRUE(db->SimilarityQuery(db->MakeKnnQuery(point, 5)).ok());
  EXPECT_GT(db->stats().dist_computations, 0u);
  EXPECT_GT(db->stats().TotalPageReads(), 0u);
  EXPECT_EQ(db->stats().queries_completed, 1u);
  EXPECT_EQ(db->stats().answers_produced, 5u);
}

TEST_P(SingleQueryBackendTest, AnswersAreSortedByDistanceThenId) {
  Dataset dataset = MakeUniformDataset(700, 4, 117);
  auto db = OpenDb(dataset);
  Vec point(4, 0.25f);
  auto got = db->SimilarityQuery(db->MakeRangeQuery(point, 0.4));
  ASSERT_TRUE(got.ok());
  for (size_t i = 1; i < got->size(); ++i) {
    EXPECT_TRUE((*got)[i - 1] < (*got)[i] || (*got)[i - 1] == (*got)[i]);
  }
}

TEST_P(SingleQueryBackendTest, EmptyQueryPointRejected) {
  Dataset dataset = MakeUniformDataset(100, 3, 119);
  auto db = OpenDb(dataset);
  Query q{12345, Vec{}, QueryType::Knn(3)};
  EXPECT_TRUE(db->SimilarityQuery(q).status().IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SingleQueryBackendTest,
    ::testing::Values(BackendCase{BackendKind::kLinearScan, "scan"},
                      BackendCase{BackendKind::kXTree, "xtree"},
                      BackendCase{BackendKind::kMTree, "mtree"},
                      BackendCase{BackendKind::kVaFile, "vafile"}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// Backend-specific I/O behaviour of the single query
// ---------------------------------------------------------------------

TEST(SingleQueryIoTest, ScanReadsEveryPageSequentially) {
  Dataset dataset = MakeUniformDataset(1000, 8, 121);
  DatabaseOptions options;
  options.backend = BackendKind::kLinearScan;
  options.page_size_bytes = 1024;
  options.buffer_fraction = 0.0;  // no buffer: pure disk behaviour
  auto db = MetricDatabase::Open(std::move(dataset),
                                 std::make_shared<EuclideanMetric>(), options);
  ASSERT_TRUE(db.ok());
  (*db)->ResetStats();
  Vec point(8, 0.5f);
  ASSERT_TRUE((*db)->SimilarityQuery((*db)->MakeKnnQuery(point, 5)).ok());
  const QueryStats& stats = (*db)->stats();
  EXPECT_EQ(stats.TotalPageReads(), (*db)->backend().NumDataPages());
  EXPECT_EQ(stats.random_page_reads, 1u);  // only the first seek
  // And the scan computes a distance to every object.
  EXPECT_EQ(stats.dist_computations, (*db)->dataset().size());
}

TEST(SingleQueryIoTest, XTreeReadsFewerPagesThanScan) {
  Dataset dataset = MakeGaussianClustersDataset(4000, 8, 10, 0.03, 123);
  auto metric = std::make_shared<EuclideanMetric>();
  DatabaseOptions options;
  options.page_size_bytes = 2048;
  options.backend = BackendKind::kLinearScan;
  auto scan_db = MetricDatabase::Open(dataset, metric, options);
  ASSERT_TRUE(scan_db.ok());
  options.backend = BackendKind::kXTree;
  auto xtree_db = MetricDatabase::Open(dataset, metric, options);
  ASSERT_TRUE(xtree_db.ok());

  Rng rng(61);
  uint64_t scan_pages = 0, xtree_pages = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Vec point(8);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    (*scan_db)->ResetAll();
    (*xtree_db)->ResetAll();
    ASSERT_TRUE(
        (*scan_db)->SimilarityQuery((*scan_db)->MakeKnnQuery(point, 10)).ok());
    ASSERT_TRUE(
        (*xtree_db)
            ->SimilarityQuery((*xtree_db)->MakeKnnQuery(point, 10))
            .ok());
    scan_pages += (*scan_db)->stats().TotalPageReads();
    xtree_pages += (*xtree_db)->stats().TotalPageReads();
  }
  EXPECT_LT(xtree_pages, scan_pages / 2)
      << "X-tree should have real selectivity on clustered data";
}

TEST(SingleQueryIoTest, MTreeComputesFewerDistancesThanScan) {
  Dataset dataset = MakeGaussianClustersDataset(3000, 8, 10, 0.03, 125);
  auto metric = std::make_shared<EuclideanMetric>();
  DatabaseOptions options;
  options.page_size_bytes = 2048;
  options.backend = BackendKind::kMTree;
  auto db = MetricDatabase::Open(dataset, metric, options);
  ASSERT_TRUE(db.ok());
  Rng rng(63);
  Vec point(8);
  for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
  (*db)->ResetStats();
  ASSERT_TRUE((*db)->SimilarityQuery((*db)->MakeKnnQuery(point, 10)).ok());
  EXPECT_LT((*db)->stats().dist_computations, dataset.size());
}

}  // namespace
}  // namespace msq
