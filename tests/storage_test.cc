// Tests for the storage substrate: disk model classification, buffer pool
// LRU behaviour, and the page layouts.

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/data_layout.h"
#include "storage/disk_model.h"
#include "storage/page.h"

namespace msq {
namespace {

// ---------------------------------------------------------------------
// DiskModel
// ---------------------------------------------------------------------

TEST(DiskModelTest, FirstReadIsRandom) {
  DiskModel disk;
  QueryStats stats;
  disk.RecordRead(0, &stats);
  EXPECT_EQ(stats.random_page_reads, 1u);
  EXPECT_EQ(stats.seq_page_reads, 0u);
}

TEST(DiskModelTest, ConsecutivePagesAreSequential) {
  DiskModel disk;
  QueryStats stats;
  disk.RecordRead(5, &stats);
  disk.RecordRead(6, &stats);
  disk.RecordRead(7, &stats);
  EXPECT_EQ(stats.random_page_reads, 1u);
  EXPECT_EQ(stats.seq_page_reads, 2u);
}

TEST(DiskModelTest, BackwardOrSkippingReadsAreRandom) {
  DiskModel disk;
  QueryStats stats;
  disk.RecordRead(5, &stats);
  disk.RecordRead(4, &stats);   // backward
  disk.RecordRead(10, &stats);  // skip
  disk.RecordRead(10, &stats);  // same page again: head moved past it
  EXPECT_EQ(stats.random_page_reads, 4u);
  EXPECT_EQ(stats.seq_page_reads, 0u);
}

TEST(DiskModelTest, ResetForgetsHeadPosition) {
  DiskModel disk;
  QueryStats stats;
  disk.RecordRead(5, &stats);
  disk.Reset();
  disk.RecordRead(6, &stats);  // would be sequential without the reset
  EXPECT_EQ(stats.random_page_reads, 2u);
}

TEST(DiskModelTest, NullStatsIsSafe) {
  DiskModel disk;
  disk.RecordRead(1, nullptr);
  EXPECT_EQ(disk.last_page(), 1u);
}

// ---------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(2);
  QueryStats stats;
  EXPECT_FALSE(pool.Access(1, &stats));
  EXPECT_TRUE(pool.Access(1, &stats));
  EXPECT_EQ(stats.buffer_hits, 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  QueryStats stats;
  pool.Access(1, &stats);
  pool.Access(2, &stats);
  pool.Access(1, &stats);  // 1 becomes most recent
  pool.Access(3, &stats);  // evicts 2
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(3));
}

TEST(BufferPoolTest, CapacityZeroCachesNothing) {
  BufferPool pool(0);
  QueryStats stats;
  EXPECT_FALSE(pool.Access(1, &stats));
  EXPECT_FALSE(pool.Access(1, &stats));
  EXPECT_EQ(stats.buffer_hits, 0u);
}

TEST(BufferPoolTest, SizeNeverExceedsCapacity) {
  BufferPool pool(3);
  QueryStats stats;
  for (PageId p = 0; p < 100; ++p) pool.Access(p, &stats);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(BufferPoolTest, ClearDropsEverything) {
  BufferPool pool(4);
  QueryStats stats;
  pool.Access(1, &stats);
  pool.Access(2, &stats);
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.Contains(1));
}

TEST(BufferPoolTest, HitRefreshesRecency) {
  BufferPool pool(2);
  QueryStats stats;
  pool.Access(1, &stats);
  pool.Access(2, &stats);
  pool.Access(1, &stats);
  pool.Access(3, &stats);
  pool.Access(4, &stats);  // evicts 1 (2 already gone)
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(3));
  EXPECT_TRUE(pool.Contains(4));
}

// ---------------------------------------------------------------------
// ObjectsPerPage / DataLayout
// ---------------------------------------------------------------------

TEST(ObjectsPerPageTest, MatchesPageSizeArithmetic) {
  // 32 KB page, 20-d float vectors + 8 bytes overhead = 88 bytes.
  EXPECT_EQ(ObjectsPerPage(32 * 1024, 20), 32u * 1024 / 88);
  // Degenerate: object bigger than page still yields 1.
  EXPECT_EQ(ObjectsPerPage(16, 100), 1u);
}

TEST(DataLayoutTest, SequentialPartitionsInOrder) {
  DataLayout layout = DataLayout::Sequential(10, 4, 0);
  EXPECT_EQ(layout.num_pages(), 3u);
  EXPECT_EQ(layout.Peek(0), (std::vector<ObjectId>{0, 1, 2, 3}));
  EXPECT_EQ(layout.Peek(2), (std::vector<ObjectId>{8, 9}));
  EXPECT_EQ(layout.PageOf(5), 1u);
  EXPECT_TRUE(layout.CheckInvariants().ok());
}

TEST(DataLayoutTest, FromGroupsMapsObjectsToTheirGroup) {
  DataLayout layout =
      DataLayout::FromGroups({{2, 0}, {1, 3, 4}}, 0);
  EXPECT_EQ(layout.num_pages(), 2u);
  EXPECT_EQ(layout.PageOf(0), 0u);
  EXPECT_EQ(layout.PageOf(3), 1u);
  EXPECT_TRUE(layout.CheckInvariants().ok());
}

TEST(DataLayoutTest, InvariantsCatchMissingObject) {
  // Object 1 never stored.
  DataLayout layout = DataLayout::FromGroups({{0, 2}}, 0);
  EXPECT_TRUE(layout.CheckInvariants().IsCorruption());
}

TEST(DataLayoutTest, InvariantsCatchEmptyPage) {
  DataLayout layout = DataLayout::FromGroups({{0}, {}}, 0);
  EXPECT_TRUE(layout.CheckInvariants().IsCorruption());
}

TEST(DataLayoutTest, ReadChargesBufferThenDisk) {
  DataLayout layout = DataLayout::Sequential(8, 2, 2);
  QueryStats stats;
  layout.Read(0, &stats);  // miss -> random read
  layout.Read(1, &stats);  // miss -> sequential read
  layout.Read(0, &stats);  // hit
  EXPECT_EQ(stats.random_page_reads, 1u);
  EXPECT_EQ(stats.seq_page_reads, 1u);
  EXPECT_EQ(stats.buffer_hits, 1u);
}

TEST(DataLayoutTest, FullScanIsOneRandomPlusSequentials) {
  DataLayout layout = DataLayout::Sequential(100, 10, 0);
  QueryStats stats;
  for (PageId p = 0; p < layout.num_pages(); ++p) layout.Read(p, &stats);
  EXPECT_EQ(stats.random_page_reads, 1u);
  EXPECT_EQ(stats.seq_page_reads, layout.num_pages() - 1);
}

TEST(DataLayoutTest, ResetIoStateColdStartsDiskAndBuffer) {
  DataLayout layout = DataLayout::Sequential(8, 2, 4);
  QueryStats stats;
  layout.Read(0, &stats);
  layout.ResetIoState();
  layout.Read(0, &stats);  // would be a buffer hit without the reset
  EXPECT_EQ(stats.buffer_hits, 0u);
  EXPECT_EQ(stats.random_page_reads, 2u);
}

}  // namespace
}  // namespace msq
