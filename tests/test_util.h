// Shared helpers for the msq test suite: brute-force query oracles and
// small deterministic datasets.

#ifndef MSQ_TESTS_TEST_UTIL_H_
#define MSQ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "core/query.h"
#include "dataset/dataset.h"
#include "dist/metric.h"

namespace msq::testing {

/// Exhaustive reference implementation of any similarity query, used as
/// the oracle against every backend and engine.
inline AnswerSet BruteForceQuery(const Dataset& ds, const Metric& metric,
                                 const Query& query) {
  AnswerSet all;
  all.reserve(ds.size());
  for (ObjectId id = 0; id < ds.size(); ++id) {
    const double d = metric.Distance(query.point, ds.object(id));
    if (d <= query.type.range) all.push_back({id, d});
  }
  std::sort(all.begin(), all.end());
  if (query.type.Adaptive() && all.size() > query.type.cardinality) {
    all.resize(query.type.cardinality);
  }
  return all;
}

/// True when two answer sets are identical (same ids and distances, same
/// order — the (distance, id) tie-break makes answers unique).
inline bool SameAnswers(const AnswerSet& a, const AnswerSet& b,
                        double tol = 1e-9) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) return false;
    if (std::abs(a[i].distance - b[i].distance) > tol) return false;
  }
  return true;
}

}  // namespace msq::testing

#endif  // MSQ_TESTS_TEST_UTIL_H_
