// Tests of the shared worker pool: task completion guarantees, the
// blocking RunAll barrier (including nested use from inside a pool task),
// and destructor drain semantics.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/thread_pool.h"

namespace msq {
namespace {

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsUsesDefaultCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreadCount());
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunAllIsABarrier) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  // No sleep/sync needed: RunAll returns only when all tasks finished.
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, RunAllWithEmptyTaskSetReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunAll({});  // must not hang or touch workers
}

TEST(ThreadPoolTest, NestedRunAllFromPoolTaskDoesNotDeadlock) {
  // A pool task issuing RunAll must not deadlock even when the inner task
  // set exceeds the worker count: the caller helps execute its own set.
  ThreadPool pool(1);
  std::atomic<int> inner_count{0};
  std::vector<std::function<void()>> outer;
  outer.push_back([&pool, &inner_count] {
    std::vector<std::function<void()>> inner;
    for (int i = 0; i < 8; ++i) {
      inner.push_back([&inner_count] { inner_count.fetch_add(1); });
    }
    pool.RunAll(std::move(inner));
  });
  pool.RunAll(std::move(outer));
  EXPECT_EQ(inner_count.load(), 8);
}

TEST(ThreadPoolTest, ConcurrentRunAllCallsFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 6; ++c) {
    callers.emplace_back([&pool, &count] {
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < 50; ++i) {
        tasks.push_back([&count] { count.fetch_add(1); });
      }
      pool.RunAll(std::move(tasks));
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(count.load(), 6 * 50);
}

TEST(ThreadPoolTest, TasksRunOffTheSubmittingThread) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::thread::id task_thread;
  pool.Submit([&] {
    std::lock_guard<std::mutex> lock(mu);
    task_thread = std::this_thread::get_id();
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_NE(task_thread, std::this_thread::get_id());
}

}  // namespace
}  // namespace msq
