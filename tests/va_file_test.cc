// Tests of the VA-file backend: quantization cells must contain their
// objects, page bounds must be sound, the approximation scan must be
// charged, and higher bit resolutions must filter better.

#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/single_query.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "dist/counting_metric.h"
#include "scan/va_file.h"
#include "tests/test_util.h"

namespace msq {
namespace {

std::shared_ptr<const Dataset> SharedDataset(Dataset ds) {
  return std::make_shared<Dataset>(std::move(ds));
}

TEST(VaFileTest, CellBoxContainsObject) {
  auto dataset = SharedDataset(MakeUniformDataset(500, 6, 601));
  auto metric = std::make_shared<EuclideanMetric>();
  VaFileOptions options;
  options.bits_per_dim = 4;
  auto va = VaFileBackend::Build(dataset, metric, options);
  ASSERT_TRUE(va.ok());
  Vec lo, hi;
  for (ObjectId id = 0; id < dataset->size(); ++id) {
    (*va)->CellBox(id, &lo, &hi);
    const Vec& v = dataset->object(id);
    for (size_t d = 0; d < 6; ++d) {
      EXPECT_GE(v[d], lo[d] - 1e-5);
      EXPECT_LE(v[d], hi[d] + 1e-5);
    }
  }
}

TEST(VaFileTest, QueriesMatchBruteForce) {
  Dataset raw = MakeGaussianClustersDataset(1000, 5, 6, 0.05, 603);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  VaFileOptions options;
  options.page_size_bytes = 1024;
  auto va = VaFileBackend::Build(dataset, metric, options);
  ASSERT_TRUE(va.ok());
  CountingMetric counted(metric);
  Rng rng(605);
  for (int trial = 0; trial < 20; ++trial) {
    Vec point(5);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    Query q{static_cast<QueryId>(trial + 1), point,
            trial % 2 == 0
                ? QueryType::Knn(1 + rng.NextIndex(10))
                : QueryType::Range(rng.NextDouble(0.05, 0.3))};
    auto got = ExecuteSingleQuery(va->get(), counted, q, nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(testing::SameAnswers(
        *got, testing::BruteForceQuery(*dataset, *metric, q)));
  }
}

TEST(VaFileTest, ApproximationScanChargedAsSequentialReads) {
  auto dataset = SharedDataset(MakeUniformDataset(4000, 16, 607));
  auto metric = std::make_shared<EuclideanMetric>();
  VaFileOptions options;
  options.page_size_bytes = 4096;
  options.bits_per_dim = 8;
  auto va = VaFileBackend::Build(dataset, metric, options);
  ASSERT_TRUE(va.ok());
  EXPECT_GT((*va)->NumApproxPages(), 0u);
  // The approximation file is bits/8 per component: 16 dims * 1 byte =
  // 16 bytes/object vs 72 bytes/object for the data -> ~4.5x smaller.
  EXPECT_LT((*va)->NumApproxPages(), (*va)->NumDataPages() / 3);
  QueryStats stats;
  Query q{1, Vec(16, 0.5f), QueryType::Knn(5)};
  auto stream = (*va)->OpenStream(q, &stats);
  EXPECT_EQ(stats.seq_page_reads, (*va)->NumApproxPages());
}

TEST(VaFileTest, VisitsFewerDataPagesThanScanOnClusteredData) {
  Dataset raw = MakeGaussianClustersDataset(4000, 8, 10, 0.03, 609);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  VaFileOptions options;
  options.page_size_bytes = 2048;
  auto va = VaFileBackend::Build(dataset, metric, options);
  ASSERT_TRUE(va.ok());
  CountingMetric counted(metric);
  QueryStats stats;
  Query q{1, Vec(8, 0.5f), QueryType::Knn(10)};
  ASSERT_TRUE(ExecuteSingleQuery(va->get(), counted, q, &stats).ok());
  // random_page_reads counts the visited data pages (phase 2).
  EXPECT_LT(stats.random_page_reads, (*va)->NumDataPages() / 2);
}

TEST(VaFileTest, MoreBitsNeverVisitMorePages) {
  Dataset raw = MakeGaussianClustersDataset(3000, 8, 10, 0.04, 611);
  auto metric = std::make_shared<EuclideanMetric>();
  uint64_t visited_coarse = 0, visited_fine = 0;
  for (size_t bits : {2, 8}) {
    auto dataset = SharedDataset(raw);
    VaFileOptions options;
    options.page_size_bytes = 2048;
    options.bits_per_dim = bits;
    auto va = VaFileBackend::Build(dataset, metric, options);
    ASSERT_TRUE(va.ok());
    CountingMetric counted(metric);
    QueryStats stats;
    Query q{1, Vec(8, 0.5f), QueryType::Knn(10)};
    ASSERT_TRUE(ExecuteSingleQuery(va->get(), counted, q, &stats).ok());
    (bits == 2 ? visited_coarse : visited_fine) = stats.random_page_reads;
  }
  EXPECT_LE(visited_fine, visited_coarse);
}

TEST(VaFileTest, PageMinDistIsSoundLowerBound) {
  auto dataset = SharedDataset(MakeUniformDataset(1000, 5, 613));
  auto metric = std::make_shared<EuclideanMetric>();
  VaFileOptions options;
  options.page_size_bytes = 1024;
  auto va = VaFileBackend::Build(dataset, metric, options);
  ASSERT_TRUE(va.ok());
  Query q{1, Vec(5, 0.25f), QueryType::Knn(3)};
  for (PageId p = 0; p < (*va)->NumDataPages(); ++p) {
    const double lb = (*va)->PageMinDist(p, q, nullptr);
    for (ObjectId id : (*va)->ReadPage(p, nullptr)) {
      EXPECT_LE(lb, metric->Distance(q.point, dataset->object(id)) + 1e-9);
    }
  }
}

TEST(VaFileTest, RejectsNonBoxMetric) {
  auto dataset = SharedDataset(MakeUniformDataset(100, 4, 615));
  auto metric = std::make_shared<AngularMetric>();
  EXPECT_TRUE(
      VaFileBackend::Build(dataset, metric, {}).status().IsNotSupported());
}

TEST(VaFileTest, RejectsBadBitWidth) {
  auto dataset = SharedDataset(MakeUniformDataset(100, 4, 617));
  auto metric = std::make_shared<EuclideanMetric>();
  VaFileOptions options;
  options.bits_per_dim = 0;
  EXPECT_TRUE(VaFileBackend::Build(dataset, metric, options)
                  .status()
                  .IsInvalidArgument());
  options.bits_per_dim = 17;
  EXPECT_TRUE(VaFileBackend::Build(dataset, metric, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(VaFileTest, FlatDimensionDoesNotCrash) {
  // A constant dimension has zero extent; the grid must stay sane.
  Dataset ds;
  Rng rng(619);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        ds.Append({static_cast<Scalar>(rng.NextDouble()), 0.5f}).ok());
  }
  auto dataset = SharedDataset(std::move(ds));
  auto metric = std::make_shared<EuclideanMetric>();
  VaFileOptions options;
  options.page_size_bytes = 512;
  auto va = VaFileBackend::Build(dataset, metric, options);
  ASSERT_TRUE(va.ok());
  CountingMetric counted(metric);
  Query q{1, Vec{0.3f, 0.5f}, QueryType::Knn(5)};
  auto got = ExecuteSingleQuery(va->get(), counted, q, nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(testing::SameAnswers(
      *got, testing::BruteForceQuery(*dataset, *metric, q)));
}

}  // namespace
}  // namespace msq
