// Structural and behavioural tests of the X-tree: split algorithms,
// invariants under bulk load and dynamic insertion, supernode creation,
// and the MBR machinery.

#include <cmath>
#include <limits>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/single_query.h"
#include "dist/counting_metric.h"
#include "dataset/generators.h"
#include "dist/builtin_metrics.h"
#include "xtree/mbr.h"
#include "xtree/split.h"
#include "xtree/xtree.h"
#include "tests/test_util.h"

namespace msq {
namespace {

// ---------------------------------------------------------------------
// Mbr
// ---------------------------------------------------------------------

TEST(MbrTest, EmptyExtendsToPoint) {
  Mbr m = Mbr::Empty(2);
  EXPECT_TRUE(m.IsEmpty());
  m.ExtendPoint({1, 2});
  EXPECT_FALSE(m.IsEmpty());
  EXPECT_EQ(m.lo(), (Vec{1, 2}));
  EXPECT_EQ(m.hi(), (Vec{1, 2}));
}

TEST(MbrTest, ExtendGrowsBothBounds) {
  Mbr m = Mbr::ForPoint({1, 5});
  m.ExtendPoint({3, 2});
  EXPECT_EQ(m.lo(), (Vec{1, 2}));
  EXPECT_EQ(m.hi(), (Vec{3, 5}));
}

TEST(MbrTest, ContainsAndIntersects) {
  Mbr a = Mbr::ForPoint({0, 0});
  a.ExtendPoint({2, 2});
  Mbr b = Mbr::ForPoint({1, 1});
  b.ExtendPoint({3, 3});
  Mbr c = Mbr::ForPoint({5, 5});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.ContainsPoint({1, 1}));
  EXPECT_FALSE(a.ContainsPoint({3, 1}));
  Mbr inner = Mbr::ForPoint({0.5, 0.5});
  inner.ExtendPoint({1.5, 1.5});
  EXPECT_TRUE(a.ContainsMbr(inner));
  EXPECT_FALSE(inner.ContainsMbr(a));
}

TEST(MbrTest, AreaMarginOverlap) {
  Mbr a = Mbr::ForPoint({0, 0});
  a.ExtendPoint({2, 3});
  EXPECT_DOUBLE_EQ(a.Area(), 6.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 5.0);
  Mbr b = Mbr::ForPoint({1, 1});
  b.ExtendPoint({3, 4});
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 2.0);  // [1,2]x[1,3]
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 12.0 - 6.0);  // union [0,3]x[0,4]
}

TEST(MbrTest, MinDistMatchesMetric) {
  Mbr m = Mbr::ForPoint({0, 0});
  m.ExtendPoint({1, 1});
  EuclideanMetric metric;
  EXPECT_DOUBLE_EQ(m.MinDist({2, 1}, metric), 1.0);
  EXPECT_DOUBLE_EQ(m.MinDist({0.5, 0.5}, metric), 0.0);
  EXPECT_NEAR(m.MinDist({2, 2}, metric), std::sqrt(2.0), 1e-12);
}

// ---------------------------------------------------------------------
// Split algorithms
// ---------------------------------------------------------------------

std::vector<SplitItem> PointItems(const std::vector<Vec>& points) {
  std::vector<SplitItem> items;
  for (uint32_t i = 0; i < points.size(); ++i) {
    items.push_back({Mbr::ForPoint(points[i]), i});
  }
  return items;
}

TEST(SplitTest, TopologicalSplitPartitionsAllItems) {
  Rng rng(401);
  std::vector<Vec> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({static_cast<Scalar>(rng.NextDouble()),
                      static_cast<Scalar>(rng.NextDouble())});
  }
  const auto outcome = TopologicalSplit(PointItems(points), 10);
  EXPECT_EQ(outcome.left.size() + outcome.right.size(), points.size());
  EXPECT_GE(outcome.left.size(), 10u);
  EXPECT_GE(outcome.right.size(), 10u);
  std::set<uint32_t> seen(outcome.left.begin(), outcome.left.end());
  seen.insert(outcome.right.begin(), outcome.right.end());
  EXPECT_EQ(seen.size(), points.size());
}

TEST(SplitTest, TopologicalSplitSeparatesTwoClusters) {
  // Two well-separated clusters along x must be split cleanly (overlap 0).
  std::vector<Vec> points;
  Rng rng(403);
  for (int i = 0; i < 20; ++i) {
    points.push_back({static_cast<Scalar>(rng.NextDouble(0, 0.2)),
                      static_cast<Scalar>(rng.NextDouble())});
  }
  for (int i = 0; i < 20; ++i) {
    points.push_back({static_cast<Scalar>(rng.NextDouble(0.8, 1.0)),
                      static_cast<Scalar>(rng.NextDouble())});
  }
  const auto outcome = TopologicalSplit(PointItems(points), 8);
  EXPECT_EQ(outcome.axis, 0u);
  EXPECT_DOUBLE_EQ(outcome.overlap_ratio, 0.0);
}

TEST(SplitTest, OverlapMinimalSplitFindsHistoryDimension) {
  // Boxes separated along dim 1; history says dim 1 was split before.
  std::vector<Vec> points;
  Rng rng(405);
  for (int i = 0; i < 10; ++i) {
    points.push_back({static_cast<Scalar>(rng.NextDouble()),
                      static_cast<Scalar>(rng.NextDouble(0.0, 0.3))});
  }
  for (int i = 0; i < 10; ++i) {
    points.push_back({static_cast<Scalar>(rng.NextDouble()),
                      static_cast<Scalar>(rng.NextDouble(0.7, 1.0))});
  }
  const auto outcome =
      OverlapMinimalSplit(PointItems(points), /*history=*/1ull << 1, 5);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->axis, 1u);
  EXPECT_DOUBLE_EQ(outcome->overlap_ratio, 0.0);
}

TEST(SplitTest, OverlapMinimalSplitFailsWithoutSeparation) {
  // Heavily overlapping boxes: no overlap-free cut exists.
  std::vector<SplitItem> items;
  for (uint32_t i = 0; i < 12; ++i) {
    Mbr box = Mbr::ForPoint({0.0f, 0.0f});
    box.ExtendPoint({1.0f, 1.0f});
    items.push_back({box, i});
  }
  EXPECT_FALSE(OverlapMinimalSplit(items, ~0ull, 4).has_value());
}

TEST(SplitTest, OverlapMinimalSplitRespectsHistoryMask) {
  // Boxes separable along dim 0 but pairwise overlapping along dim 1
  // (every box spans the full [0,1] range there).
  std::vector<SplitItem> items;
  for (uint32_t i = 0; i < 20; ++i) {
    Mbr box = Mbr::ForPoint({i < 10 ? 0.0f : 1.0f, 0.0f});
    box.ExtendPoint({i < 10 ? 0.2f : 1.2f, 1.0f});
    items.push_back({box, i});
  }
  // Separable along dim 0, but history only allows dim 1.
  EXPECT_FALSE(OverlapMinimalSplit(items, 1ull << 1, 5).has_value());
  EXPECT_TRUE(OverlapMinimalSplit(items, 1ull << 0, 5).has_value());
}

TEST(SplitTest, GroupOverlapRatioBounds) {
  Mbr a = Mbr::ForPoint({0, 0});
  a.ExtendPoint({1, 1});
  Mbr b = Mbr::ForPoint({2, 2});
  b.ExtendPoint({3, 3});
  EXPECT_DOUBLE_EQ(GroupOverlapRatio(a, b), 0.0);
  EXPECT_DOUBLE_EQ(GroupOverlapRatio(a, a), 1.0);
}

// ---------------------------------------------------------------------
// Tree construction
// ---------------------------------------------------------------------

std::shared_ptr<const Dataset> SharedDataset(Dataset ds) {
  return std::make_shared<Dataset>(std::move(ds));
}

TEST(XTreeTest, BulkLoadInvariantsHold) {
  auto dataset = SharedDataset(MakeUniformDataset(5000, 8, 407));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 2048;
  auto tree = XTreeBackend::BulkLoad(dataset, metric, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE((*tree)->CheckInvariants().ok())
      << (*tree)->CheckInvariants().ToString();
  const XTreeShape shape = (*tree)->Shape();
  EXPECT_GT(shape.num_leaves, 1u);
  EXPECT_GT(shape.height, 1u);
  EXPECT_GT(shape.avg_leaf_fill, 0.4);
}

TEST(XTreeTest, DynamicInsertionInvariantsHold) {
  auto dataset = SharedDataset(MakeGaussianClustersDataset(2000, 6, 6, 0.05,
                                                           409));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = XTreeBackend::BuildByInsertion(dataset, metric, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE((*tree)->CheckInvariants().ok())
      << (*tree)->CheckInvariants().ToString();
}

TEST(XTreeTest, DynamicInsertionWithoutReinsert) {
  auto dataset = SharedDataset(MakeUniformDataset(1500, 6, 411));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 1024;
  options.enable_reinsert = false;
  auto tree = XTreeBackend::BuildByInsertion(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
}

TEST(XTreeTest, SupernodesAppearOnHighDimensionalData) {
  // 64-d uniform data with small directory pages: topological splits
  // overlap badly, the history rarely helps, supernodes must appear.
  auto dataset = SharedDataset(MakeUniformDataset(3000, 64, 413));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 4096;
  options.max_overlap = 0.05;
  auto tree = XTreeBackend::BuildByInsertion(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
  EXPECT_GT((*tree)->Shape().num_supernodes, 0u);
}

TEST(XTreeTest, SupernodesDisabledYieldsPlainRStarTree) {
  auto dataset = SharedDataset(MakeUniformDataset(3000, 64, 415));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 4096;
  options.max_overlap = 0.05;
  options.enable_supernodes = false;
  auto tree = XTreeBackend::BuildByInsertion(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
  EXPECT_EQ((*tree)->Shape().num_supernodes, 0u);
}

TEST(XTreeTest, DynamicQueriesMatchBruteForce) {
  Dataset raw = MakeGaussianClustersDataset(1200, 5, 5, 0.05, 417);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = XTreeBackend::BuildByInsertion(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  CountingMetric counted(metric);
  Rng rng(419);
  for (int trial = 0; trial < 20; ++trial) {
    Vec point(5);
    for (auto& x : point) x = static_cast<Scalar>(rng.NextDouble());
    Query q{static_cast<QueryId>(1000 + trial), point, QueryType::Knn(8)};
    auto got = ExecuteSingleQuery(tree->get(), counted, q, nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(testing::SameAnswers(
        *got, testing::BruteForceQuery(*dataset, *metric, q)));
  }
}

TEST(XTreeTest, InsertAfterBulkLoadKeepsInvariantsAndAnswers) {
  Dataset raw = MakeUniformDataset(1000, 4, 421);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 1024;
  // Bulk load only the first half, then insert the rest dynamically.
  // (BulkLoad indexes the whole dataset; emulate by building dynamically
  // from a bulk-loaded subset is not supported, so here we simply verify
  // that Insert on top of a bulk-loaded tree is rejected for duplicate
  // coverage or accepted and consistent.)
  auto tree = XTreeBackend::BulkLoad(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  // Inserting an existing object again is allowed structurally; the tree
  // then indexes it twice, which CheckInvariants flags via the layout.
  EXPECT_TRUE((*tree)->Insert(0).ok());
  EXPECT_FALSE((*tree)->CheckInvariants().ok());
}

TEST(XTreeTest, RejectsMetricWithoutBoxSupport) {
  auto dataset = SharedDataset(MakeUniformDataset(100, 4, 423));
  auto metric = std::make_shared<AngularMetric>();
  EXPECT_TRUE(XTreeBackend::BulkLoad(dataset, metric, {})
                  .status()
                  .IsNotSupported());
}

TEST(XTreeTest, RejectsEmptyDataset) {
  auto dataset = std::make_shared<Dataset>();
  auto metric = std::make_shared<EuclideanMetric>();
  EXPECT_TRUE(XTreeBackend::BulkLoad(dataset, metric, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(XTreeTest, ManhattanMetricQueriesWork) {
  Dataset raw = MakeUniformDataset(800, 4, 425);
  auto dataset = SharedDataset(raw);
  auto metric = std::make_shared<ManhattanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = XTreeBackend::BulkLoad(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  CountingMetric counted(metric);
  Query q{9001, Vec{0.5f, 0.5f, 0.5f, 0.5f}, QueryType::Knn(5)};
  auto got = ExecuteSingleQuery(tree->get(), counted, q, nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(testing::SameAnswers(
      *got, testing::BruteForceQuery(*dataset, *metric, q)));
}

TEST(XTreeTest, StreamYieldsPagesInAscendingMinDist) {
  auto dataset = SharedDataset(MakeUniformDataset(2000, 6, 427));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = XTreeBackend::BulkLoad(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  Query q{9002, Vec(6, 0.5f), QueryType::Knn(1000000)};
  auto stream = (*tree)->OpenStream(q, nullptr);
  PageCandidate pc;
  double prev = -1.0;
  size_t count = 0;
  while (stream->Next(std::numeric_limits<double>::infinity(), &pc)) {
    EXPECT_GE(pc.min_dist, prev);
    prev = pc.min_dist;
    ++count;
  }
  EXPECT_EQ(count, (*tree)->NumDataPages());
}

TEST(XTreeTest, PageMinDistLowerBoundsObjectDistances) {
  auto dataset = SharedDataset(MakeUniformDataset(1500, 5, 429));
  auto metric = std::make_shared<EuclideanMetric>();
  XTreeOptions options;
  options.page_size_bytes = 1024;
  auto tree = XTreeBackend::BulkLoad(dataset, metric, options);
  ASSERT_TRUE(tree.ok());
  Query q{9003, Vec(5, 0.3f), QueryType::Knn(5)};
  for (PageId p = 0; p < (*tree)->NumDataPages(); ++p) {
    const double lb = (*tree)->PageMinDist(p, q, nullptr);
    for (ObjectId id : (*tree)->ReadPage(p, nullptr)) {
      EXPECT_LE(lb,
                metric->Distance(q.point, dataset->object(id)) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace msq
