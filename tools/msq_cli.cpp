// msq_cli — command-line front end of the library:
//
//   msq_cli generate kind=tycho n=60000 out=/tmp/astro.bin
//   msq_cli info     data=/tmp/astro.bin
//   msq_cli query    data=/tmp/astro.bin backend=xtree k=10 object=42
//   msq_cli batch    data=/tmp/astro.bin backend=linear_scan m=50 k=10
//   msq_cli dbscan   data=/tmp/astro.bin eps=0.08 min_pts=6
//   msq_cli save     data=/tmp/astro.bin backend=xtree db=/tmp/astro.msq
//   msq_cli query    db=/tmp/astro.msq k=10 object=42
//   msq_cli insert   db=/tmp/astro.msq data=/tmp/new.bin
//   msq_cli delete   db=/tmp/astro.msq ids=3,17,42
//   msq_cli insert   db=/tmp/astro.msq data=/tmp/new.bin wal=1
//   msq_cli checkpoint db=/tmp/astro.msq
//   msq_cli scrub    db=/tmp/astro.msq
//
// The binary dataset format is produced/consumed by Dataset::SaveBinary /
// LoadBinary; `generate` also accepts out=*.csv. `save` persists the built
// database (data pages + index) as one page-store file, which the query
// subcommands reopen via db= without rebuilding; answers_out= dumps
// answers as hex floats so reopened results can be diffed bit-for-bit.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "common/serialize.h"
#include "msq/msq.h"

namespace {

using namespace msq;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<Dataset> LoadData(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".csv") {
    return Dataset::LoadCsv(path, /*has_label=*/true);
  }
  return Dataset::LoadBinary(path);
}

BackendKind ParseBackend(const std::string& name) {
  if (name == "linear_scan") return BackendKind::kLinearScan;
  if (name == "mtree") return BackendKind::kMTree;
  if (name == "va_file") return BackendKind::kVaFile;
  return BackendKind::kXTree;
}

// Observability flags shared by the query-running subcommands.
void DefineObsFlags(Flags* flags) {
  flags->Define("metrics_dump", "",
                "write Prometheus metrics text here after the run "
                "(- = stdout)");
  flags->Define("trace_out", "",
                "enable tracing; write Chrome trace JSON here after the run");
}

// Must run before the database is opened (spans recorded from the start).
void StartObs(const Flags& flags) {
  if (!flags.GetString("trace_out").empty()) obs::Tracer::Global()->Enable();
}

int FinishObs(const Flags& flags) {
  const std::string trace_out = flags.GetString("trace_out");
  if (!trace_out.empty()) {
    obs::Tracer* tracer = obs::Tracer::Global();
    tracer->Disable();
    if (Status s = tracer->WriteChromeTrace(trace_out); !s.ok()) {
      return Fail(s);
    }
    std::fprintf(stderr, "trace: %zu events -> %s\n", tracer->size(),
                 trace_out.c_str());
  }
  const std::string dump = flags.GetString("metrics_dump");
  if (!dump.empty()) {
    const std::string text =
        obs::MetricsRegistry::Global()->RenderPrometheusText();
    if (dump == "-") {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      std::FILE* f = std::fopen(dump.c_str(), "wb");
      if (f == nullptr) {
        return Fail(Status::IOError("cannot open " + dump));
      }
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "metrics -> %s\n", dump.c_str());
    }
  }
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  Flags flags;
  flags.Define("kind", "tycho",
               "tycho | image | uniform | clusters | sessions");
  flags.Define("n", "60000", "objects to generate");
  flags.Define("dim", "20", "dimensionality (uniform/clusters)");
  flags.Define("clusters", "10", "cluster count (clusters kind)");
  flags.Define("seed", "42", "generator seed");
  flags.Define("out", "dataset.bin", "output path (.bin or .csv)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string kind = flags.GetString("kind");
  Dataset dataset;
  if (kind == "tycho") {
    TychoLikeOptions options;
    options.n = n;
    options.seed = seed;
    dataset = MakeTychoLikeDataset(options);
  } else if (kind == "image") {
    ImageHistogramOptions options;
    options.n = n;
    options.seed = seed;
    dataset = MakeImageHistogramDataset(options);
  } else if (kind == "uniform") {
    dataset = MakeUniformDataset(n, static_cast<size_t>(flags.GetInt("dim")),
                                 seed);
  } else if (kind == "clusters") {
    dataset = MakeGaussianClustersDataset(
        n, static_cast<size_t>(flags.GetInt("dim")),
        static_cast<size_t>(flags.GetInt("clusters")), 0.03, seed);
  } else if (kind == "sessions") {
    dataset = MakeSessionDataset(n, 12, 200, 16, seed);
  } else {
    std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
    return 1;
  }
  const std::string out = flags.GetString("out");
  const Status saved =
      out.size() > 4 && out.substr(out.size() - 4) == ".csv"
          ? dataset.SaveCsv(out)
          : dataset.SaveBinary(out);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %zu x %zu-d objects to %s\n", dataset.size(),
              dataset.dim(), out.c_str());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  Flags flags;
  flags.Define("data", "dataset.bin", "dataset path");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  auto dataset = LoadData(flags.GetString("data"));
  if (!dataset.ok()) return Fail(dataset.status());
  Vec mins, maxs;
  dataset->Bounds(&mins, &maxs);
  std::printf("objects: %zu\ndim: %zu\nlabeled: %s\n", dataset->size(),
              dataset->dim(), dataset->has_labels() ? "yes" : "no");
  std::printf("bounds[0]: [%g, %g]\n", mins.empty() ? 0.0 : mins[0],
              maxs.empty() ? 0.0 : maxs[0]);
  const size_t pages = (dataset->size() +
                        ObjectsPerPage(kDefaultPageSizeBytes,
                                       dataset->dim()) -
                        1) /
                       ObjectsPerPage(kDefaultPageSizeBytes, dataset->dim());
  std::printf("data pages (32 KB): %zu\n", pages);
  return 0;
}

// Flags shared by every subcommand that opens a database.
void DefineDbFlags(Flags* flags) {
  flags->Define("data", "dataset.bin", "dataset path");
  flags->Define("backend", "xtree", "linear_scan | xtree | mtree | va_file");
  flags->Define("db", "",
                "open this saved page-store database instead of building "
                "one from data=");
}

StatusOr<std::unique_ptr<MetricDatabase>> OpenFromFlags(const Flags& flags) {
  DatabaseOptions options;
  options.multi.max_batch_size = 1024;
  const std::string db_path = flags.GetString("db");
  if (!db_path.empty()) {
    // Reopen a saved database: backend kind and page geometry come from
    // the file, queries run against real page reads.
    return MetricDatabase::Open(db_path, options);
  }
  auto dataset = LoadData(flags.GetString("data"));
  if (!dataset.ok()) return dataset.status();
  options.backend = ParseBackend(flags.GetString("backend"));
  return MetricDatabase::Open(std::move(dataset).value(),
                              std::make_shared<EuclideanMetric>(), options);
}

// Writes answers as "<id>\t<hex float>" lines: hex floats round-trip
// doubles exactly, so two dumps are comparable bit-for-bit with cmp/diff.
Status WriteAnswers(const std::string& path, const AnswerSet& answers) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  for (const Neighbor& nb : answers) {
    std::fprintf(f, "%u\t%a\n", nb.id, nb.distance);
  }
  std::fclose(f);
  return Status::OK();
}

int CmdQuery(int argc, char** argv) {
  Flags flags;
  DefineDbFlags(&flags);
  flags.Define("object", "0", "query object id");
  flags.Define("k", "10", "neighbors (0 = use eps range instead)");
  flags.Define("eps", "0.1", "range radius when k=0");
  flags.Define("answers_out", "",
               "also write answers here as hex-float lines (bit-exact)");
  DefineObsFlags(&flags);
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  StartObs(flags);
  auto db = OpenFromFlags(flags);
  if (!db.ok()) return Fail(db.status());
  const ObjectId object = static_cast<ObjectId>(flags.GetInt("object"));
  if (object >= (*db)->dataset().size()) {
    std::fprintf(stderr, "object id out of range\n");
    return 1;
  }
  const size_t k = static_cast<size_t>(flags.GetInt("k"));
  const Query query =
      k > 0 ? (*db)->MakeObjectKnnQuery(object, k)
            : (*db)->MakeObjectRangeQuery(object, flags.GetDouble("eps"));
  auto answers = (*db)->SimilarityQuery(query);
  if (!answers.ok()) return Fail(answers.status());
  for (const Neighbor& nb : *answers) {
    std::printf("%u\t%.6f\t%d\n", nb.id, nb.distance,
                (*db)->dataset().label(nb.id));
  }
  const std::string answers_out = flags.GetString("answers_out");
  if (!answers_out.empty()) {
    if (Status s = WriteAnswers(answers_out, *answers); !s.ok()) {
      return Fail(s);
    }
  }
  std::fprintf(stderr, "%s\n", (*db)->stats().ToString().c_str());
  return FinishObs(flags);
}

int CmdSave(int argc, char** argv) {
  Flags flags;
  flags.Define("data", "dataset.bin", "dataset path");
  flags.Define("backend", "xtree", "linear_scan | xtree | mtree | va_file");
  flags.Define("db", "db.msq", "output page-store path");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  auto dataset = LoadData(flags.GetString("data"));
  if (!dataset.ok()) return Fail(dataset.status());
  DatabaseOptions options;
  options.backend = ParseBackend(flags.GetString("backend"));
  auto db = MetricDatabase::Open(std::move(dataset).value(),
                                 std::make_shared<EuclideanMetric>(),
                                 options);
  if (!db.ok()) return Fail(db.status());
  const std::string out = flags.GetString("db");
  WallTimer timer;
  if (Status s = (*db)->Save(out); !s.ok()) return Fail(s);
  std::printf("saved %zu objects (%s backend) to %s in %.1f ms\n",
              (*db)->dataset().size(),
              BackendKindName(options.backend).c_str(), out.c_str(),
              timer.ElapsedMillis());
  return 0;
}

// Online mutation subcommands (DESIGN §13): mutate a *saved* database and
// persist the result. By default Save compacts first, so the written file
// is always a clean base build — reopening it never replays a delta. With
// wal=1 (DESIGN §14) the mutations are instead appended to `<db>.wal` and
// the command exits *without* rewriting the store: the next open (any
// subcommand with db=) replays the log, and `checkpoint` folds it.

void DefineWalFlags(Flags* flags) {
  flags->Define("wal", "0",
                "1 = log mutations to <db>.wal instead of rewriting the "
                "store (crash-safe; no out= allowed)");
  flags->Define("fsync", "every_record",
                "WAL fsync policy: every_record | every_n | on_checkpoint");
}

StatusOr<DatabaseOptions> WalOptionsFromFlags(const Flags& flags) {
  DatabaseOptions options;
  options.durability.wal_enabled = true;
  auto policy = WalFsyncPolicyFromName(flags.GetString("fsync"));
  if (!policy.ok()) return policy.status();
  options.durability.wal_fsync_policy = *policy;
  return options;
}

int CmdInsert(int argc, char** argv) {
  Flags flags;
  flags.Define("db", "db.msq", "saved page-store database to mutate");
  flags.Define("data", "new.bin",
               "dataset file (.bin or .csv) whose objects are inserted");
  flags.Define("out", "", "write the mutated database here (default: db=)");
  DefineWalFlags(&flags);
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  const bool use_wal = flags.GetBool("wal");
  DatabaseOptions options;
  if (use_wal) {
    if (!flags.GetString("out").empty()) {
      std::fprintf(stderr, "wal=1 mutates <db> in place; out= not allowed\n");
      return 1;
    }
    auto wal_options = WalOptionsFromFlags(flags);
    if (!wal_options.ok()) return Fail(wal_options.status());
    options = std::move(wal_options).value();
  }
  auto db = MetricDatabase::Open(flags.GetString("db"), options);
  if (!db.ok()) return Fail(db.status());
  auto additions = LoadData(flags.GetString("data"));
  if (!additions.ok()) return Fail(additions.status());
  if (additions->dim() != (*db)->dataset().dim()) {
    std::fprintf(stderr, "dimension mismatch: db is %zu-d, data is %zu-d\n",
                 (*db)->dataset().dim(), additions->dim());
    return 1;
  }
  WallTimer timer;
  ObjectId first = 0, last = 0;
  for (size_t i = 0; i < additions->size(); ++i) {
    auto id = (*db)->Insert(additions->object(static_cast<ObjectId>(i)),
                            additions->label(static_cast<ObjectId>(i)));
    if (!id.ok()) return Fail(id.status());
    if (i == 0) first = *id;
    last = *id;
  }
  if (use_wal) {
    std::printf(
        "inserted %zu objects (ids %u..%u) into the WAL of %s "
        "(%llu bytes) in %.1f ms; next open replays them\n",
        additions->size(), first, last, flags.GetString("db").c_str(),
        static_cast<unsigned long long>((*db)->WalSizeBytes()),
        timer.ElapsedMillis());
    return 0;
  }
  std::string out = flags.GetString("out");
  if (out.empty()) out = flags.GetString("db");
  if (Status s = (*db)->Save(out); !s.ok()) return Fail(s);
  std::printf(
      "inserted %zu objects (ids %u..%u before compaction), "
      "%zu live -> %s in %.1f ms\n",
      additions->size(), first, last, (*db)->NumLiveObjects(), out.c_str(),
      timer.ElapsedMillis());
  return 0;
}

int CmdDelete(int argc, char** argv) {
  Flags flags;
  flags.Define("db", "db.msq", "saved page-store database to mutate");
  flags.Define("ids", "", "comma-separated object ids to delete");
  flags.Define("out", "", "write the mutated database here (default: db=)");
  DefineWalFlags(&flags);
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  const bool use_wal = flags.GetBool("wal");
  DatabaseOptions options;
  if (use_wal) {
    if (!flags.GetString("out").empty()) {
      std::fprintf(stderr, "wal=1 mutates <db> in place; out= not allowed\n");
      return 1;
    }
    auto wal_options = WalOptionsFromFlags(flags);
    if (!wal_options.ok()) return Fail(wal_options.status());
    options = std::move(wal_options).value();
  }
  auto db = MetricDatabase::Open(flags.GetString("db"), options);
  if (!db.ok()) return Fail(db.status());
  const std::string ids = flags.GetString("ids");
  if (ids.empty()) {
    std::fprintf(stderr, "ids= is required (e.g. ids=3,17,42)\n");
    return 1;
  }
  WallTimer timer;
  size_t deleted = 0;
  for (size_t pos = 0; pos < ids.size();) {
    const size_t comma = std::min(ids.find(',', pos), ids.size());
    const std::string token = ids.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    char* end = nullptr;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      std::fprintf(stderr, "bad object id '%s'\n", token.c_str());
      return 1;
    }
    if (Status s = (*db)->Delete(static_cast<ObjectId>(value)); !s.ok()) {
      return Fail(s);
    }
    ++deleted;
  }
  if (use_wal) {
    std::printf(
        "deleted %zu objects via the WAL of %s (%llu bytes) in %.1f ms; "
        "next open replays the tombstones\n",
        deleted, flags.GetString("db").c_str(),
        static_cast<unsigned long long>((*db)->WalSizeBytes()),
        timer.ElapsedMillis());
    return 0;
  }
  std::string out = flags.GetString("out");
  if (out.empty()) out = flags.GetString("db");
  if (Status s = (*db)->Save(out); !s.ok()) return Fail(s);
  std::printf(
      "deleted %zu objects, %zu live (ids renumbered by compaction) -> %s "
      "in %.1f ms\n",
      deleted, (*db)->NumLiveObjects(), out.c_str(), timer.ElapsedMillis());
  return 0;
}

// Folds a replayed WAL into a fresh atomic checkpoint and truncates it.
int CmdCheckpoint(int argc, char** argv) {
  Flags flags;
  flags.Define("db", "db.msq", "saved page-store database to checkpoint");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  DatabaseOptions options;
  options.durability.wal_enabled = true;
  auto db = MetricDatabase::Open(flags.GetString("db"), options);
  if (!db.ok()) return Fail(db.status());
  const auto& recovery = (*db)->recovery();
  WallTimer timer;
  if (Status s = (*db)->Checkpoint(); !s.ok()) return Fail(s);
  std::printf(
      "checkpointed %s: replayed %llu wal records, %zu live objects, "
      "wal reset to %llu bytes in %.1f ms\n",
      flags.GetString("db").c_str(),
      static_cast<unsigned long long>(recovery.replayed_records),
      (*db)->NumLiveObjects(),
      static_cast<unsigned long long>((*db)->WalSizeBytes()),
      timer.ElapsedMillis());
  return 0;
}

// Offline integrity check: re-verifies the superblock, the object table,
// every named extent's CRC, every data-page extent listed in the "pages"
// directory, and (if present) the WAL's frames. Exits nonzero on the
// first corruption so scripts can gate on it.
int CmdScrub(int argc, char** argv) {
  Flags flags;
  flags.Define("db", "db.msq", "saved page-store database to verify");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  const std::string path = flags.GetString("db");
  // PageFile::Open already verifies the superblock CRC, the exact file
  // size, and the object table's CRC.
  auto opened = PageFile::Open(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "scrub %s: superblock/object table: %s\n",
                 path.c_str(), opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<PageFile> store = std::move(opened).value();
  std::printf("scrub %s: superblock OK (%u-byte blocks, %llu blocks)\n",
              path.c_str(), store->block_size(),
              static_cast<unsigned long long>(store->num_blocks()));
  bool ok = true;
  std::string bytes;
  for (const auto& [name, extent] : store->objects()) {
    const Status read = store->ReadExtent(extent, &bytes);
    std::printf("  object %-8s blocks %llu+%u  %u bytes  %s\n", name.c_str(),
                static_cast<unsigned long long>(extent.first_block),
                extent.num_blocks, extent.byte_length,
                read.ok() ? "OK" : read.ToString().c_str());
    ok = ok && read.ok();
  }
  // Data pages: walk the "pages" directory and re-read every page extent.
  if (store->HasObject("pages") && store->GetObject("pages", &bytes).ok()) {
    std::istringstream dir(bytes);
    uint32_t tag = 0, version = 0, dim = 0;
    uint64_t num_pages = 0, total_objects = 0;
    bool dir_ok = ReadU32(dir, &tag).ok() && ReadU32(dir, &version).ok() &&
                  ReadU32(dir, &dim).ok() && ReadU64(dir, &num_pages).ok() &&
                  ReadU64(dir, &total_objects).ok();
    uint64_t bad_pages = 0;
    for (uint64_t p = 0; dir_ok && p < num_pages; ++p) {
      uint32_t count = 0;
      PageFileExtent extent;
      dir_ok = ReadU32(dir, &count).ok() &&
               ReadU64(dir, &extent.first_block).ok() &&
               ReadU32(dir, &extent.num_blocks).ok() &&
               ReadU32(dir, &extent.byte_length).ok() &&
               ReadU32(dir, &extent.crc).ok();
      if (!dir_ok) break;
      if (Status read = store->ReadExtent(extent, &bytes); !read.ok()) {
        std::printf("  page %llu: %s\n",
                    static_cast<unsigned long long>(p),
                    read.ToString().c_str());
        ++bad_pages;
      }
    }
    if (!dir_ok) {
      std::printf("  page directory: unparsable\n");
      ok = false;
    } else {
      std::printf("  data pages: %llu/%llu OK (%llu objects)\n",
                  static_cast<unsigned long long>(num_pages - bad_pages),
                  static_cast<unsigned long long>(num_pages),
                  static_cast<unsigned long long>(total_objects));
      ok = ok && bad_pages == 0;
    }
  }
  // The WAL, if one sits next to the store: frame-level validity only
  // (nonce matching is recovery's job; scrub reports what it sees).
  const std::string wal_path = path + ".wal";
  if (FileExists(wal_path)) {
    WalReplayResult replay;
    if (Status s = Wal::Scan(wal_path, /*expected_nonce=*/0, &replay);
        !s.ok()) {
      std::printf("  wal: %s\n", s.ToString().c_str());
      ok = false;
    } else {
      std::printf("  wal: %zu records, %llu valid bytes%s\n",
                  replay.records.size(),
                  static_cast<unsigned long long>(replay.valid_bytes),
                  replay.tail_truncated ? " (torn tail dropped)" : "");
    }
  }
  std::printf("scrub %s: %s\n", path.c_str(), ok ? "OK" : "CORRUPT");
  return ok ? 0 : 1;
}

int CmdBatch(int argc, char** argv) {
  Flags flags;
  DefineDbFlags(&flags);
  flags.Define("m", "50", "batch width");
  flags.Define("k", "10", "neighbors per query");
  flags.Define("seed", "1", "query sample seed");
  DefineObsFlags(&flags);
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  StartObs(flags);
  auto db = OpenFromFlags(flags);
  if (!db.ok()) return Fail(db.status());
  const size_t m = std::min<size_t>(
      static_cast<size_t>(flags.GetInt("m")), (*db)->dataset().size());
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  std::vector<Query> batch;
  for (uint64_t id :
       rng.SampleWithoutReplacement((*db)->dataset().size(), m)) {
    batch.push_back((*db)->MakeObjectKnnQuery(
        static_cast<ObjectId>(id),
        static_cast<size_t>(flags.GetInt("k"))));
  }
  WallTimer timer;
  auto all = (*db)->MultipleSimilarityQueryAll(batch);
  if (!all.ok()) return Fail(all.status());
  std::printf("completed %zu queries in one multiple similarity query\n",
              all->size());
  std::printf("stats: %s\n", (*db)->stats().ToString().c_str());
  std::printf("modeled: io %.2f ms, cpu %.2f ms | wall %.1f ms\n",
              (*db)->ModeledIoMillis(), (*db)->ModeledCpuMillis(),
              timer.ElapsedMillis());
  return FinishObs(flags);
}

int CmdDbscan(int argc, char** argv) {
  Flags flags;
  DefineDbFlags(&flags);
  flags.Define("eps", "0.08", "DBSCAN Eps");
  flags.Define("min_pts", "6", "DBSCAN MinPts");
  flags.Define("m", "64", "multiple-query batch width");
  DefineObsFlags(&flags);
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::printf("%s\n", s.message().c_str());
    return s.IsNotFound() ? 0 : 1;
  }
  StartObs(flags);
  auto db = OpenFromFlags(flags);
  if (!db.ok()) return Fail(db.status());
  DbscanParams params;
  params.eps = flags.GetDouble("eps");
  params.min_pts = static_cast<size_t>(flags.GetInt("min_pts"));
  params.batch_size = static_cast<size_t>(flags.GetInt("m"));
  auto result = RunDbscan(db->get(), params);
  if (!result.ok()) return Fail(result.status());
  std::printf("clusters: %zu\n", result->num_clusters);
  size_t noise = 0;
  for (int32_t c : result->cluster_of) noise += (c == kDbscanNoise);
  std::printf("noise objects: %zu / %zu\n", noise,
              result->cluster_of.size());
  std::printf("stats: %s\n", (*db)->stats().ToString().c_str());
  return FinishObs(flags);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <generate|info|query|batch|dbscan|save|insert|"
                 "delete|checkpoint|scrub> [key=value...]\n",
                 argv[0]);
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand's Flags sees its own arguments.
  argv[1] = argv[0];
  if (command == "generate") return CmdGenerate(argc - 1, argv + 1);
  if (command == "info") return CmdInfo(argc - 1, argv + 1);
  if (command == "query") return CmdQuery(argc - 1, argv + 1);
  if (command == "batch") return CmdBatch(argc - 1, argv + 1);
  if (command == "dbscan") return CmdDbscan(argc - 1, argv + 1);
  if (command == "save") return CmdSave(argc - 1, argv + 1);
  if (command == "insert") return CmdInsert(argc - 1, argv + 1);
  if (command == "delete") return CmdDelete(argc - 1, argv + 1);
  if (command == "checkpoint") return CmdCheckpoint(argc - 1, argv + 1);
  if (command == "scrub") return CmdScrub(argc - 1, argv + 1);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
